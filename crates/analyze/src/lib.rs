//! Static SQL trackability analysis for the intrusion-resilient proxy.
//!
//! The DSN'04 framework tracks inter-transaction dependencies by rewriting
//! SQL in flight. Rewriting has documented blind spots — aggregate and
//! `DISTINCT` selects, tracking-column collisions, statements outside the
//! proxy dialect — and each blind spot silently weakens repair soundness.
//! This crate makes the blind spots explicit *before deployment*:
//!
//! * [`Analyzer`] classifies every statement into the
//!   [`Verdict`] lattice `Sound < Degraded < Untracked`, with stable
//!   machine-readable [`Reason`] codes;
//! * [`infer_derivable_columns`] infers *false-dependency candidates* —
//!   pure accumulator columns (TPC-C's `w_ytd` et al.) whose writes can be
//!   discarded from damage closures — replacing hand-maintained DBA rules;
//! * [`CoverageReport`] turns both into workload lint reports, consumed by
//!   the `resildb-lint` binary and the CI coverage gate.
//!
//! The proxy consults [`classify_statement`] at rewrite time to enforce a
//! warn/reject policy; the repair tool consumes the inferred derivable
//! columns as false-dependency discard rules. The tracking-column
//! vocabulary ([`TRID_COLUMN`] and friends) lives here, the lowest layer
//! all three share.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod blast;
mod classify;
mod columns;
mod conflict;
mod derive;
mod dot;
mod jsonish;
mod profile;
mod report;
mod verdict;

pub use blast::{BaselineVerdict, BlastRadius, ProfileClosure};
pub use classify::{
    classify_statement, columns_read_for, select_has_aggregate, Analyzer, SchemaSnapshot,
};
pub use columns::{is_tracking_column, COLUMN_TRID_PREFIX, IDENTITY_COLUMN, TRID_COLUMN};
pub use conflict::{ConflictGraph, ConflictKind, ConflictProvenance, ProfileEdge};
pub use derive::{infer_derivable_columns, DerivableColumn};
pub use dot::{DotBuilder, EdgeStyle, FILL_ATTACK, FILL_CLOSURE};
pub use jsonish::{parse_json, JsonValue};
pub use profile::{group_transactions, profiles_from_groups, TxnProfile, WriteFootprint};
pub use report::{escape_json, CoverageReport, StatementReport};
// Re-exported so profile consumers can inspect footprints without a
// direct dependency on the SQL crate.
pub use resildb_sql::ColumnSet;
pub use verdict::{Granularity, Reason, Verdict};
