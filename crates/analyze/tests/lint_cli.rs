//! End-to-end regression tests for the `resildb-lint` binary — above all
//! that both baseline gates fail *loudly* (exit 2) when their baseline
//! file is missing or unparseable, instead of silently skipping the gate.

// Test crate: unwrap/expect are the idiomatic assertion style here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::process::{Command, Output};

fn lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_resildb-lint"))
        .args(args)
        .output()
        .expect("spawn resildb-lint")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn tmp_file(name: &str, content: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("resildb-lint-test-{}-{name}", std::process::id()));
    std::fs::write(&path, content).unwrap();
    path
}

#[test]
fn coverage_baseline_missing_file_is_a_loud_error() {
    let out = lint(&["--baseline", "/nonexistent/coverage-baseline.txt"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    assert!(stderr_of(&out).contains("cannot read baseline"));
}

#[test]
fn coverage_baseline_garbage_is_a_loud_error() {
    let path = tmp_file("garbage.txt", "not a fraction\n");
    let out = lint(&["--baseline", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    assert!(stderr_of(&out).contains("invalid fraction"));
}

#[test]
fn blast_radius_reports_tpcc_reachability() {
    let out = lint(&["blast-radius"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    // The paper-expected TPC-C shape: a malicious Payment reaches the
    // downstream write profiles and its surface carries w_ytd, while the
    // item table (never written by any profile) stays out of every
    // closure's surface.
    let payment = text
        .split("\nprofile ")
        .find(|s| s.starts_with("Payment"))
        .expect("Payment section");
    assert!(
        payment.contains("NewOrder") && payment.contains("Delivery"),
        "{payment}"
    );
    assert!(payment.contains("warehouse.w_ytd"), "{payment}");
    assert!(!payment.contains("item"), "{payment}");
}

#[test]
fn blast_radius_baseline_missing_file_is_a_loud_error() {
    let out = lint(&["blast-radius", "--baseline", "/nonexistent/blast.json"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    assert!(stderr_of(&out).contains("cannot read baseline"));
}

#[test]
fn blast_radius_baseline_garbage_is_a_loud_error() {
    let path = tmp_file("blast-garbage.json", "{ not json");
    let out = lint(&["blast-radius", "--baseline", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
    assert!(stderr_of(&out).contains("not valid JSON"));
}

#[test]
fn blast_radius_gates_against_its_own_json() {
    let json = lint(&["blast-radius", "--json"]);
    assert_eq!(json.status.code(), Some(0), "{}", stderr_of(&json));
    let path = tmp_file("blast-self.json", &String::from_utf8_lossy(&json.stdout));
    let out = lint(&["blast-radius", "--baseline", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    assert!(stderr_of(&out).contains("OK: blast radius within baseline"));
}

#[test]
fn blast_radius_closure_growth_fails_the_gate() {
    // A baseline claiming every closure is just the profile itself: the
    // real TPC-C graph is denser, so the gate must report growth.
    let baseline = r#"{"closures": {
        "Delivery": {"profiles": ["Delivery"], "surface": []},
        "NewOrder": {"profiles": ["NewOrder"], "surface": []},
        "OrderStatus": {"profiles": ["OrderStatus"], "surface": []},
        "Payment": {"profiles": ["Payment"], "surface": []},
        "StockLevel": {"profiles": ["StockLevel"], "surface": []}
    }}"#;
    let path = tmp_file("blast-stale.json", baseline);
    let out = lint(&["blast-radius", "--baseline", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(1), "{}", stderr_of(&out));
    assert!(stderr_of(&out).contains("grew beyond baseline"));
}

#[test]
fn blast_radius_dot_highlights_the_seed_closure() {
    let out = lint(&["blast-radius", "--dot", "--seed", "Payment"]);
    assert_eq!(out.status.code(), Some(0), "{}", stderr_of(&out));
    let dot = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(dot.starts_with("digraph conflict_profiles {"), "{dot}");
    assert!(
        dot.contains("label=\"Payment\", style=filled, fillcolor=indianred1"),
        "{dot}"
    );
    assert!(dot.contains("fillcolor=orange"), "{dot}");
}

#[test]
fn blast_radius_unknown_seed_is_an_error() {
    let out = lint(&["blast-radius", "--dot", "--seed", "NoSuchProfile"]);
    assert_eq!(out.status.code(), Some(2), "{}", stderr_of(&out));
}
