//! End-to-end tests of the tracking proxy against a live engine.

// Test crate: unwrap/expect are the idiomatic assertion style here.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use resildb_engine::{Database, Flavor, Value};
use resildb_proxy::{prepare_database, ProxyConfig, TrackingProxy};
use resildb_wire::{Connection, Driver, LinkProfile, NativeDriver, WireError};

/// Creates a prepared database plus a tracking connection to it.
fn tracked(flavor: Flavor) -> (Database, Box<dyn Connection>) {
    tracked_with(ProxyConfig::new(flavor))
}

/// Like [`tracked`] but also records dependency rows for read-only
/// transactions (several tests observe trans_dep for pure readers).
fn tracked_readonly_deps(flavor: Flavor) -> (Database, Box<dyn Connection>) {
    let config = ProxyConfig::builder(flavor)
        .record_read_only_deps(true)
        .build();
    tracked_with(config)
}

fn tracked_with(config: ProxyConfig) -> (Database, Box<dyn Connection>) {
    let flavor = config.flavor;
    let db = Database::in_memory(flavor);
    let native = NativeDriver::new(db.clone(), LinkProfile::local());
    prepare_database(&mut *native.connect().unwrap()).unwrap();
    let driver = TrackingProxy::single_proxy(db.clone(), LinkProfile::local(), config);
    let conn = driver.connect().unwrap();
    (db, conn)
}

/// All dependency ids recorded for proxy transaction `trid`.
fn deps_of(db: &Database, trid: i64) -> Vec<i64> {
    let mut s = db.session();
    let r = s
        .query(&format!(
            "SELECT dep_tr_ids FROM trans_dep WHERE tr_id = {trid}"
        ))
        .unwrap();
    let mut deps = Vec::new();
    for row in r.rows {
        if let Value::Str(ids) = &row[0] {
            deps.extend(ids.split_whitespace().map(|t| t.parse::<i64>().unwrap()));
        }
    }
    deps.sort_unstable();
    deps
}

#[test]
fn tables_created_through_proxy_gain_trid() {
    let (db, mut conn) = tracked(Flavor::Postgres);
    conn.execute("CREATE TABLE t (a INTEGER)").unwrap();
    let schema = db.table("t").unwrap().read().schema().clone();
    assert!(schema.has_column("trid"));
    assert!(!schema.has_column("rid"), "rid only on Sybase flavor");
}

#[test]
fn sybase_tables_also_gain_identity_rid() {
    let (db, mut conn) = tracked(Flavor::Sybase);
    conn.execute("CREATE TABLE t (a INTEGER)").unwrap();
    let schema = db.table("t").unwrap().read().schema().clone();
    assert!(schema.has_column("trid"));
    assert!(schema.has_column("rid"));
    assert!(schema.identity_column().is_some());
}

#[test]
fn writes_stamp_trid_and_commit_records_dependencies() {
    let (db, mut conn) = tracked(Flavor::Postgres);
    conn.execute("CREATE TABLE acct (id INTEGER PRIMARY KEY, bal FLOAT)")
        .unwrap();

    // Txn A: insert two rows.
    conn.execute("BEGIN").unwrap();
    conn.execute("INSERT INTO acct (id, bal) VALUES (1, 10.0), (2, 20.0)")
        .unwrap();
    conn.execute("COMMIT").unwrap();

    // Txn B: read row 1, update row 2 — B depends on A via the read.
    conn.execute("BEGIN").unwrap();
    let r = conn.execute("SELECT bal FROM acct WHERE id = 1").unwrap();
    // Client sees no trid column.
    let rows = r.rows().unwrap();
    assert_eq!(rows.columns, vec!["bal"]);
    assert_eq!(rows.rows[0], vec![Value::Float(10.0)]);
    conn.execute("UPDATE acct SET bal = 99.0 WHERE id = 2")
        .unwrap();
    conn.execute("COMMIT").unwrap();

    // Find the two proxy txn ids from trans_dep.
    let mut s = db.session();
    let recs = s
        .query("SELECT tr_id, dep_tr_ids FROM trans_dep ORDER BY tr_id")
        .unwrap();
    assert_eq!(recs.rows.len(), 2);
    let Value::Int(a) = recs.rows[0][0] else {
        panic!()
    };
    let Value::Int(b) = recs.rows[1][0] else {
        panic!()
    };

    assert_eq!(deps_of(&db, a), Vec::<i64>::new(), "first txn has no deps");
    assert_eq!(deps_of(&db, b), vec![a], "reader depends on writer");

    // The stored rows carry the writer's trid.
    let r = s.query("SELECT trid FROM acct WHERE id = 2").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(b));
    let r = s.query("SELECT trid FROM acct WHERE id = 1").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(a));
}

#[test]
fn provenance_records_table_and_read_columns() {
    let (db, mut conn) = tracked(Flavor::Postgres);
    conn.execute("CREATE TABLE warehouse (w_id INTEGER PRIMARY KEY, w_tax FLOAT, w_ytd FLOAT)")
        .unwrap();
    conn.execute("INSERT INTO warehouse (w_id, w_tax, w_ytd) VALUES (1, 0.05, 0.0)")
        .unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("SELECT w_tax FROM warehouse WHERE w_id = 1")
        .unwrap();
    conn.execute("UPDATE warehouse SET w_ytd = 1.0 WHERE w_id = 1")
        .unwrap();
    conn.execute("COMMIT").unwrap();

    let mut s = db.session();
    let prov = s
        .query("SELECT via_table, read_cols FROM trans_dep_prov")
        .unwrap();
    assert_eq!(prov.rows.len(), 1);
    assert_eq!(prov.rows[0][0], Value::from("warehouse"));
    let Value::Str(cols) = &prov.rows[0][1] else {
        panic!()
    };
    assert!(cols.contains("w_tax") && cols.contains("w_id"));
    assert!(
        !cols.contains("w_ytd"),
        "reader never touched w_ytd: {cols}"
    );
}

#[test]
fn autocommit_write_gets_its_own_tracked_transaction() {
    let (db, mut conn) = tracked(Flavor::Oracle);
    conn.execute("CREATE TABLE t (a INTEGER)").unwrap();
    conn.execute("INSERT INTO t (a) VALUES (1)").unwrap();
    conn.execute("INSERT INTO t (a) VALUES (2)").unwrap();
    assert_eq!(db.row_count("trans_dep").unwrap(), 2);
    // Unannotated transactions get no annot row (client-supplied naming).
    assert_eq!(db.row_count("annot").unwrap(), 0);
    // Distinct proxy ids.
    let mut s = db.session();
    let r = s
        .query("SELECT COUNT(DISTINCT tr_id) FROM trans_dep")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(2));
}

#[test]
fn rollback_discards_tracking_state() {
    let (db, mut conn) = tracked(Flavor::Postgres);
    conn.execute("CREATE TABLE t (a INTEGER)").unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("INSERT INTO t (a) VALUES (1)").unwrap();
    conn.execute("ROLLBACK").unwrap();
    assert_eq!(db.row_count("t").unwrap(), 0);
    assert_eq!(
        db.row_count("trans_dep").unwrap(),
        0,
        "no record for aborted txn"
    );
}

#[test]
fn annotate_names_the_transaction() {
    let (db, mut conn) = tracked(Flavor::Postgres);
    conn.execute("CREATE TABLE t (a INTEGER)").unwrap();
    conn.execute("ANNOTATE Payment_0_3_0_5").unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("INSERT INTO t (a) VALUES (1)").unwrap();
    conn.execute("COMMIT").unwrap();
    let mut s = db.session();
    let r = s.query("SELECT descr FROM annot").unwrap();
    assert_eq!(r.rows[0][0], Value::from("Payment_0_3_0_5"));
}

#[test]
fn annotate_inside_transaction_applies_to_it() {
    let (db, mut conn) = tracked(Flavor::Postgres);
    conn.execute("CREATE TABLE t (a INTEGER)").unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("ANNOTATE Deliv_0_1_7").unwrap();
    conn.execute("INSERT INTO t (a) VALUES (1)").unwrap();
    conn.execute("COMMIT").unwrap();
    let mut s = db.session();
    let r = s.query("SELECT descr FROM annot").unwrap();
    assert_eq!(r.rows[0][0], Value::from("Deliv_0_1_7"));
}

#[test]
fn aggregate_selects_pass_through_untracked() {
    let (db, mut conn) = tracked(Flavor::Postgres);
    conn.execute("CREATE TABLE t (a INTEGER)").unwrap();
    conn.execute("INSERT INTO t (a) VALUES (1)").unwrap();
    conn.execute("BEGIN").unwrap();
    let r = conn.execute("SELECT SUM(a) FROM t").unwrap();
    assert_eq!(r.rows().unwrap().rows[0][0], Value::Int(1));
    conn.execute("INSERT INTO t (a) VALUES (9)").unwrap();
    conn.execute("COMMIT").unwrap();
    // The aggregate read produced no dependency (paper limitation).
    let mut s = db.session();
    let r = s
        .query("SELECT dep_tr_ids FROM trans_dep ORDER BY tr_id DESC LIMIT 1")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::from(""));
}

#[test]
fn dependency_on_deleted_then_read_rows_via_select() {
    let (db, mut conn) = tracked_readonly_deps(Flavor::Postgres);
    conn.execute("CREATE TABLE t (a INTEGER, b INTEGER)")
        .unwrap();
    conn.execute("INSERT INTO t (a, b) VALUES (1, 0)").unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("SELECT b FROM t WHERE a = 1").unwrap();
    conn.execute("COMMIT").unwrap();
    // The reading txn recorded its dependency on the loader txn.
    let mut s = db.session();
    let r = s.query("SELECT COUNT(*) FROM trans_dep_prov").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));
    // Sanity: count of trans_dep rows equals committed tracked txns.
    assert_eq!(db.row_count("trans_dep").unwrap(), 2);
}

#[test]
fn wildcard_select_strips_trid_from_client_view() {
    let (_db, mut conn) = tracked(Flavor::Postgres);
    conn.execute("CREATE TABLE t (a INTEGER, b VARCHAR(4))")
        .unwrap();
    conn.execute("INSERT INTO t (a, b) VALUES (1, 'x')")
        .unwrap();
    let r = conn.execute("SELECT * FROM t").unwrap();
    let rows = r.rows().unwrap();
    assert_eq!(rows.columns, vec!["a", "b"], "trid hidden from wildcard");
    assert_eq!(rows.rows[0].len(), 2);
}

#[test]
fn join_select_harvests_from_both_tables() {
    let (db, mut conn) = tracked_readonly_deps(Flavor::Postgres);
    conn.execute("CREATE TABLE t1 (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    conn.execute("CREATE TABLE t2 (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    conn.execute("INSERT INTO t1 (id, v) VALUES (1, 10)")
        .unwrap(); // txn X
    conn.execute("INSERT INTO t2 (id, v) VALUES (1, 20)")
        .unwrap(); // txn Y
    conn.execute("BEGIN").unwrap();
    conn.execute("SELECT t1.v, t2.v FROM t1, t2 WHERE t1.id = t2.id")
        .unwrap();
    conn.execute("COMMIT").unwrap();
    let mut s = db.session();
    let r = s
        .query("SELECT dep_tr_ids FROM trans_dep ORDER BY tr_id DESC LIMIT 1")
        .unwrap();
    let Value::Str(ids) = &r.rows[0][0] else {
        panic!()
    };
    assert_eq!(
        ids.split_whitespace().count(),
        2,
        "deps on both writers: {ids}"
    );
}

#[test]
fn tracking_disabled_reads_record_nothing() {
    let db = Database::in_memory(Flavor::Postgres);
    let native = NativeDriver::new(db.clone(), LinkProfile::local());
    prepare_database(&mut *native.connect().unwrap()).unwrap();
    let config = ProxyConfig::builder(Flavor::Postgres)
        .track_reads(false)
        .build();
    let driver = TrackingProxy::single_proxy(db.clone(), LinkProfile::local(), config);
    let mut conn = driver.connect().unwrap();
    conn.execute("CREATE TABLE t (a INTEGER)").unwrap();
    conn.execute("INSERT INTO t (a) VALUES (1)").unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("SELECT a FROM t").unwrap();
    conn.execute("INSERT INTO t (a) VALUES (2)").unwrap();
    conn.execute("COMMIT").unwrap();
    let mut s = db.session();
    let r = s
        .query("SELECT dep_tr_ids FROM trans_dep ORDER BY tr_id DESC LIMIT 1")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::from(""), "no read deps harvested");
}

#[test]
fn queries_on_tracking_tables_pass_through() {
    let (_db, mut conn) = tracked(Flavor::Postgres);
    conn.execute("CREATE TABLE t (a INTEGER)").unwrap();
    conn.execute("INSERT INTO t (a) VALUES (1)").unwrap();
    // Reading trans_dep through the proxy must not try to harvest trid.
    let r = conn
        .execute("SELECT tr_id, dep_tr_ids FROM trans_dep")
        .unwrap();
    assert_eq!(r.rows().unwrap().rows.len(), 1);
}

#[test]
fn unparseable_sql_is_a_protocol_error() {
    let (_db, mut conn) = tracked(Flavor::Postgres);
    let err = conn.execute("FROBNICATE THE DATABASE").unwrap_err();
    assert!(matches!(err, WireError::Protocol(_)));
}

#[test]
fn trans_dep_insert_is_last_before_commit_in_wal() {
    let (db, mut conn) = tracked(Flavor::Postgres);
    conn.execute("CREATE TABLE t (a INTEGER)").unwrap();
    conn.execute("BEGIN").unwrap();
    conn.execute("INSERT INTO t (a) VALUES (1)").unwrap();
    conn.execute("COMMIT").unwrap();
    let wal = db.wal_records();
    // Find the commit of the tracked txn (the one whose txn also inserted
    // into trans_dep), then check the preceding row-op record.
    let mut last_table_before_commit = None;
    for rec in &wal {
        match &rec.op {
            resildb_engine::LogOp::Insert { table, .. } => {
                last_table_before_commit = Some(table.clone());
            }
            resildb_engine::LogOp::Commit => {
                if let Some(t) = &last_table_before_commit {
                    if t == "trans_dep" {
                        return; // property holds
                    }
                }
            }
            _ => {}
        }
    }
    panic!("no commit preceded by a trans_dep insert found");
}

#[test]
fn long_dependency_sets_split_across_rows() {
    let (db, mut conn) = tracked_readonly_deps(Flavor::Postgres);
    conn.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    // 120 separate writer transactions (enough that the space-separated
    // id list exceeds the 200-char column width).
    for i in 0..120 {
        conn.execute(&format!("INSERT INTO t (id, v) VALUES ({i}, {i})"))
            .unwrap();
    }
    // One reader that touches all 60 rows.
    conn.execute("BEGIN").unwrap();
    conn.execute("SELECT v FROM t").unwrap();
    conn.execute("COMMIT").unwrap();
    let mut s = db.session();
    let r = s
        .query("SELECT tr_id, dep_tr_ids FROM trans_dep ORDER BY tr_id DESC LIMIT 2")
        .unwrap();
    let Value::Int(reader) = r.rows[0][0] else {
        panic!()
    };
    let rows = s
        .query(&format!(
            "SELECT dep_tr_ids FROM trans_dep WHERE tr_id = {reader}"
        ))
        .unwrap();
    assert!(
        rows.rows.len() > 1,
        "long dep set must split; got {} row(s)",
        rows.rows.len()
    );
    let total: usize = rows
        .rows
        .iter()
        .map(|row| match &row[0] {
            Value::Str(s) => s.split_whitespace().count(),
            _ => 0,
        })
        .sum();
    assert_eq!(total, 120);
}
