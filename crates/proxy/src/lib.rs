//! Inter-transaction dependency tracking by SQL interception and rewriting
//! — the run-time half of the DSN 2004 intrusion-resilience framework.
//!
//! The tracker is completely DBMS-independent: it understands only SQL
//! text, which is why the paper could port it unchanged across PostgreSQL,
//! Oracle and Sybase. The mechanism (paper §3.2 and Table 1):
//!
//! * every user table transparently gains a `trid INTEGER` column holding
//!   the proxy transaction id of the last writer ([`rewrite_create_table`]
//!   also injects a Sybase identity column where the flavor lacks a row-id
//!   pseudo-column);
//! * `SELECT`s are rewritten to additionally return each table's `trid`;
//!   the proxy harvests those values as the reading transaction's
//!   dependencies and strips them from the client-visible result;
//! * `UPDATE`/`INSERT` set `trid = curTrID`; `DELETE` passes through
//!   (update/delete-induced dependencies are reconstructed from the
//!   transaction log at repair time — an explicit run-time optimisation);
//! * at `COMMIT`, the dependency set is inserted into the `trans_dep`
//!   table (plus a symbolic name into `annot` and column-level provenance
//!   into `trans_dep_prov`), and only then is the commit forwarded, making
//!   the dependency record atomic with the transaction.
//!
//! # Examples
//!
//! ```
//! use resildb_engine::{Database, Flavor};
//! use resildb_proxy::{prepare_database, ProxyConfig, TrackingProxy};
//! use resildb_wire::{Connection, Driver, LinkProfile, NativeDriver};
//!
//! # fn main() -> Result<(), resildb_wire::WireError> {
//! let db = Database::in_memory(Flavor::Postgres);
//! let native = NativeDriver::new(db.clone(), LinkProfile::local());
//! prepare_database(&mut *native.connect()?)?;
//!
//! let driver = TrackingProxy::single_proxy(db.clone(), LinkProfile::local(),
//!     ProxyConfig::new(Flavor::Postgres));
//! let mut conn = driver.connect()?;
//! conn.execute("CREATE TABLE t (a INTEGER)")?; // gains a hidden trid column
//! conn.execute("BEGIN")?;
//! conn.execute("INSERT INTO t (a) VALUES (1)")?;
//! conn.execute("COMMIT")?;
//! // The dependency record is now in trans_dep:
//! assert_eq!(db.row_count("trans_dep").unwrap(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod cache;
mod config;
mod depstore;
mod fence;
mod rewrite;
mod setup;
mod tracker;

pub use cache::{RewriteCache, RewriteCacheStats};
pub use config::{
    ContainmentPolicy, EnforcementPolicy, FenceAction, ProxyConfig, ProxyConfigBuilder,
    TrackingGranularity,
};
pub use depstore::{DepStore, DepStoreStats};
pub use fence::{
    canon_value, composite_key, Fence, FenceDecision, FenceStats, RowFence, FENCE_DEFER_BUDGET,
};
pub use rewrite::{
    is_tracking_column, rewrite_create_table, rewrite_insert, rewrite_select, rewrite_update,
    HarvestSource, SelectOutcome, SelectRewrite, SelectSkip, COLUMN_TRID_PREFIX, IDENTITY_COLUMN,
    TRID_COLUMN,
};
pub use setup::{prepare_database, ANNOT_TABLE, PROV_TABLE, TRACKING_TABLES, TRANS_DEP_TABLE};
pub use tracker::{ProxyRuntime, ProxyTxnId, TrackerStats, TrackerStatsSnapshot, TrackingProxy};
