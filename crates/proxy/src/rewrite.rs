//! Pure AST rewriting — the rules of paper Table 1.

use resildb_sql::{
    Assignment, ColumnDef, ColumnRef, CreateTable, Expr, Insert, Select, SelectItem, TypeName,
    Update,
};

use resildb_engine::Flavor;

use crate::config::TrackingGranularity;

// The tracking-column vocabulary is shared with the static analyzer and
// the repair tool; it lives in `resildb-analyze` (the lowest common layer)
// and is re-exported here for the proxy's historical public API.
use resildb_analyze::{columns_read_for, select_has_aggregate};
pub use resildb_analyze::{is_tracking_column, COLUMN_TRID_PREFIX, IDENTITY_COLUMN, TRID_COLUMN};

/// Prefix of the aliases given to harvested trid projection items, so the
/// tracker can strip them from results unambiguously.
pub(crate) const HARVEST_ALIAS_PREFIX: &str = "__trid";

/// What a rewritten SELECT will return beyond the client's projection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectRewrite {
    /// For each appended harvest column, the (lower-cased) name of the
    /// table whose `trid` it carries, plus the columns of that table the
    /// statement references (projection + predicates) — the provenance
    /// needed for false-dependency filtering (paper §5.3).
    pub harvested: Vec<HarvestSource>,
}

/// Provenance of one harvested trid column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarvestSource {
    /// Table whose `trid` column is harvested.
    pub table: String,
    /// Columns of that table the original statement touches.
    pub read_columns: Vec<String>,
}

/// Why [`rewrite_select`] left a SELECT untouched. Distinguishing the
/// cases matters for soundness accounting: an aggregate or DISTINCT
/// passthrough *loses* read dependencies (the paper's documented
/// limitation), while a FROM-less select never had any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectSkip {
    /// Aggregate or `GROUP BY` query: per-row trids are meaningless under
    /// aggregation, so its reads go untracked.
    Aggregate,
    /// `SELECT DISTINCT`: appending trid columns would change which rows
    /// are duplicates, so its reads go untracked.
    Distinct,
    /// No FROM clause (`SELECT 1`): reads no table, nothing to track.
    NoFrom,
}

impl SelectSkip {
    /// Whether the passthrough loses dependencies (as opposed to the
    /// benign FROM-less case).
    pub fn loses_dependencies(self) -> bool {
        !matches!(self, SelectSkip::NoFrom)
    }
}

/// The outcome of [`rewrite_select`]: either a rewritten statement with
/// its harvest plan, or an explicit record of why the statement was passed
/// through unmodified. Earlier revisions returned `Option` here, which
/// made "rewritten dependencies" and "silently dropped dependencies"
/// indistinguishable to callers.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectOutcome {
    /// The SELECT was rewritten; harvest `plan` describes the appended
    /// trid columns.
    Rewritten {
        /// The rewritten statement.
        select: Select,
        /// Provenance of the appended harvest columns.
        plan: SelectRewrite,
    },
    /// The SELECT is forwarded as-is, for the recorded reason.
    Passthrough(SelectSkip),
}

impl SelectOutcome {
    /// The rewritten parts, for callers that only care about success.
    pub fn rewritten(self) -> Option<(Select, SelectRewrite)> {
        match self {
            SelectOutcome::Rewritten { select, plan } => Some((select, plan)),
            SelectOutcome::Passthrough(_) => None,
        }
    }
}

/// Rewrites a SELECT per Table 1: appends one `t.trid AS __tridN` item per
/// FROM-table. Aggregate/grouped and DISTINCT queries are passed through
/// with an explicit [`SelectSkip`], exactly as in the paper — per-row
/// trids are meaningless under aggregation, a documented source of lost
/// dependencies.
pub fn rewrite_select(sel: &Select, granularity: TrackingGranularity) -> SelectOutcome {
    if select_has_aggregate(sel) {
        return SelectOutcome::Passthrough(SelectSkip::Aggregate);
    }
    if sel.distinct {
        return SelectOutcome::Passthrough(SelectSkip::Distinct);
    }
    if sel.from.is_empty() {
        return SelectOutcome::Passthrough(SelectSkip::NoFrom);
    }
    let mut rewritten = sel.clone();
    let mut harvested = Vec::with_capacity(sel.from.len());
    let mut k = 0;
    let mut append =
        |rewritten: &mut Select, binding: &str, column: &str, source: HarvestSource| {
            rewritten.items.push(SelectItem::Expr {
                expr: Expr::Column(ColumnRef::qualified(
                    binding.to_string(),
                    column.to_string(),
                )),
                alias: Some(format!("{HARVEST_ALIAS_PREFIX}{k}")),
            });
            harvested.push(source);
            k += 1;
        };
    for t in &sel.from {
        let binding = t.binding_name().to_string();
        let table = t.name.to_ascii_lowercase();
        let read_columns = columns_read_for(sel, &binding);
        match granularity {
            TrackingGranularity::Row => append(
                &mut rewritten,
                &binding,
                TRID_COLUMN,
                HarvestSource {
                    table,
                    read_columns,
                },
            ),
            TrackingGranularity::Column if read_columns.is_empty() => {
                // Wildcard-style reads: fall back to the row stamp.
                append(
                    &mut rewritten,
                    &binding,
                    TRID_COLUMN,
                    HarvestSource {
                        table,
                        read_columns,
                    },
                )
            }
            TrackingGranularity::Column => {
                // One harvest per referenced column: the dependency is on
                // that column's last writer, not the row's.
                for col in &read_columns {
                    append(
                        &mut rewritten,
                        &binding,
                        &format!("{COLUMN_TRID_PREFIX}{col}"),
                        HarvestSource {
                            table: table.clone(),
                            read_columns: vec![col.clone()],
                        },
                    );
                }
            }
        }
    }
    SelectOutcome::Rewritten {
        select: rewritten,
        plan: SelectRewrite { harvested },
    }
}

/// Rewrites an UPDATE per Table 1: appends `trid = <cur_trid>` to the SET
/// list (unless the client, illegally, already assigns it).
pub fn rewrite_update(upd: &Update, cur_trid: i64, granularity: TrackingGranularity) -> Update {
    rewrite_update_with(upd, Expr::int(cur_trid), granularity)
}

/// [`rewrite_update`] generalised over the stamped expression, so the
/// rewrite cache can build a template with a `?` splice slot
/// (`Expr::Param(TRID_PARAM)`) where the literal trid would go.
pub(crate) fn rewrite_update_with(
    upd: &Update,
    trid_expr: Expr,
    granularity: TrackingGranularity,
) -> Update {
    let mut rewritten = upd.clone();
    if granularity == TrackingGranularity::Column {
        // Stamp the per-column last-writer of every assigned user column.
        let assigned: Vec<String> = rewritten
            .assignments
            .iter()
            .map(|a| a.column.to_ascii_lowercase())
            .filter(|c| !is_tracking_column(c))
            .collect();
        for col in assigned {
            let stamp = format!("{COLUMN_TRID_PREFIX}{col}");
            if !rewritten
                .assignments
                .iter()
                .any(|a| a.column.eq_ignore_ascii_case(&stamp))
            {
                rewritten.assignments.push(Assignment {
                    column: stamp,
                    value: trid_expr.clone(),
                });
            }
        }
    }
    if !rewritten
        .assignments
        .iter()
        .any(|a| a.column.eq_ignore_ascii_case(TRID_COLUMN))
    {
        rewritten.assignments.push(Assignment {
            column: TRID_COLUMN.to_string(),
            value: trid_expr,
        });
    }
    rewritten
}

/// Rewrites an INSERT per Table 1: appends the `trid` column and
/// `<cur_trid>` to every VALUES tuple. Inserts without a column list have
/// the value appended positionally (the trid column is always appended
/// right after the client's columns by [`rewrite_create_table`]); on
/// flavors with an injected identity column a NULL is appended for it so
/// the engine auto-numbers.
pub fn rewrite_insert(
    ins: &Insert,
    cur_trid: i64,
    flavor: Flavor,
    granularity: TrackingGranularity,
) -> Insert {
    rewrite_insert_with(ins, Expr::int(cur_trid), flavor, granularity)
}

/// [`rewrite_insert`] generalised over the stamped expression, so the
/// rewrite cache can build a template with a `?` splice slot
/// (`Expr::Param(TRID_PARAM)`) where the literal trid would go.
pub(crate) fn rewrite_insert_with(
    ins: &Insert,
    trid_expr: Expr,
    flavor: Flavor,
    granularity: TrackingGranularity,
) -> Insert {
    let mut rewritten = ins.clone();
    if rewritten.columns.is_empty() {
        // Positional inserts cannot name the per-column stamps (the proxy
        // is schema-less); only the row stamp is appended. Column-level
        // deployments should use explicit column lists.
        for row in &mut rewritten.rows {
            row.push(trid_expr.clone());
            if flavor.rowid_pseudocolumn().is_none() {
                row.push(Expr::Literal(resildb_sql::Literal::Null));
            }
        }
    } else {
        if rewritten
            .columns
            .iter()
            .any(|c| c.eq_ignore_ascii_case(TRID_COLUMN))
        {
            return rewritten;
        }
        if granularity == TrackingGranularity::Column {
            let listed: Vec<String> = rewritten
                .columns
                .iter()
                .map(|c| c.to_ascii_lowercase())
                .filter(|c| !is_tracking_column(c))
                .collect();
            for col in listed {
                rewritten.columns.push(format!("{COLUMN_TRID_PREFIX}{col}"));
                for row in &mut rewritten.rows {
                    row.push(trid_expr.clone());
                }
            }
        }
        rewritten.columns.push(TRID_COLUMN.to_string());
        for row in &mut rewritten.rows {
            row.push(trid_expr.clone());
        }
    }
    rewritten
}

/// Rewrites CREATE TABLE: appends `trid INTEGER`, and on flavors without a
/// row-id pseudo-column also `rid INTEGER IDENTITY` (paper §4.3's Sybase
/// workaround). Existing columns with those names are left alone.
pub fn rewrite_create_table(
    ct: &CreateTable,
    flavor: Flavor,
    granularity: TrackingGranularity,
) -> CreateTable {
    let mut rewritten = ct.clone();
    fn has(ct: &CreateTable, name: &str) -> bool {
        ct.columns.iter().any(|c| c.name.eq_ignore_ascii_case(name))
    }
    if granularity == TrackingGranularity::Column {
        let user_cols: Vec<String> = rewritten
            .columns
            .iter()
            .map(|c| c.name.to_ascii_lowercase())
            .filter(|c| !is_tracking_column(c))
            .collect();
        for col in user_cols {
            let stamp = format!("{COLUMN_TRID_PREFIX}{col}");
            if !has(&rewritten, &stamp) {
                rewritten
                    .columns
                    .push(ColumnDef::new(stamp, TypeName::Integer));
            }
        }
    }
    if !has(&rewritten, TRID_COLUMN) {
        rewritten
            .columns
            .push(ColumnDef::new(TRID_COLUMN, TypeName::Integer));
    }
    if flavor.rowid_pseudocolumn().is_none() && !has(&rewritten, IDENTITY_COLUMN) {
        let mut rid = ColumnDef::new(IDENTITY_COLUMN, TypeName::Integer);
        rid.identity = true;
        rewritten.columns.push(rid);
    }
    rewritten
}

#[cfg(test)]
mod tests {
    use super::*;
    use resildb_sql::{parse_statement, Statement};

    fn sel(sql: &str) -> Select {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            _ => unreachable!(),
        }
    }

    // ---- the exact rows of paper Table 1 -------------------------------

    #[test]
    fn table1_row1_multi_table_select() {
        let s = sel("SELECT t1.a1, t1.a2, t2.a3 FROM t1, t2 WHERE t1.x = t2.x");
        let (r, plan) = rewrite_select(&s, TrackingGranularity::Row)
            .rewritten()
            .unwrap();
        assert_eq!(
            r.to_string(),
            "SELECT t1.a1, t1.a2, t2.a3, t1.trid AS __trid0, t2.trid AS __trid1 \
             FROM t1, t2 WHERE t1.x = t2.x"
        );
        assert_eq!(plan.harvested.len(), 2);
        assert_eq!(plan.harvested[0].table, "t1");
        assert_eq!(plan.harvested[1].table, "t2");
    }

    #[test]
    fn table1_row2_single_table_select() {
        let s = sel("SELECT t.a FROM t WHERE c = 1");
        let (r, _) = rewrite_select(&s, TrackingGranularity::Row)
            .rewritten()
            .unwrap();
        assert_eq!(
            r.to_string(),
            "SELECT t.a, t.trid AS __trid0 FROM t WHERE c = 1"
        );
    }

    #[test]
    fn table1_row3_aggregate_select_unchanged() {
        let s = sel("SELECT SUM(t.a) FROM t WHERE c = 1 GROUP BY t.b");
        assert_eq!(
            rewrite_select(&s, TrackingGranularity::Row),
            SelectOutcome::Passthrough(SelectSkip::Aggregate),
            "aggregates are not rewritten"
        );
        // Plain aggregates without GROUP BY are also left alone.
        let s2 = sel("SELECT COUNT(*) FROM t");
        assert_eq!(
            rewrite_select(&s2, TrackingGranularity::Row),
            SelectOutcome::Passthrough(SelectSkip::Aggregate)
        );
    }

    #[test]
    fn table1_row4_update_gains_trid_assignment() {
        let Statement::Update(u) =
            parse_statement("UPDATE t SET a1 = 1, a2 = 'v' WHERE c = 1").unwrap()
        else {
            unreachable!()
        };
        let r = rewrite_update(&u, 42, TrackingGranularity::Row);
        assert_eq!(
            r.to_string(),
            "UPDATE t SET a1 = 1, a2 = 'v', trid = 42 WHERE c = 1"
        );
    }

    #[test]
    fn table1_row5_insert_gains_trid_column() {
        let Statement::Insert(i) =
            parse_statement("INSERT INTO t (a1, a2) VALUES (1, 'v')").unwrap()
        else {
            unreachable!()
        };
        let r = rewrite_insert(&i, 42, Flavor::Postgres, TrackingGranularity::Row);
        assert_eq!(
            r.to_string(),
            "INSERT INTO t (a1, a2, trid) VALUES (1, 'v', 42)"
        );
    }

    // ---- additional behaviour ------------------------------------------

    #[test]
    fn select_with_alias_uses_alias_for_trid() {
        let s = sel("SELECT c.c_balance FROM customer c WHERE c.c_id = 7");
        let (r, plan) = rewrite_select(&s, TrackingGranularity::Row)
            .rewritten()
            .unwrap();
        assert!(r.to_string().contains("c.trid AS __trid0"));
        assert_eq!(plan.harvested[0].table, "customer");
    }

    #[test]
    fn provenance_captures_read_columns() {
        let s = sel("SELECT w.w_tax FROM warehouse w WHERE w.w_id = 3 ORDER BY w.w_name");
        let (_, plan) = rewrite_select(&s, TrackingGranularity::Row)
            .rewritten()
            .unwrap();
        assert_eq!(
            plan.harvested[0].read_columns,
            vec!["w_tax", "w_id", "w_name"]
        );
    }

    #[test]
    fn unqualified_columns_attributed_to_all_tables() {
        let s = sel("SELECT a FROM t1, t2 WHERE b = 1");
        let (_, plan) = rewrite_select(&s, TrackingGranularity::Row)
            .rewritten()
            .unwrap();
        assert_eq!(plan.harvested[0].read_columns, vec!["a", "b"]);
        assert_eq!(plan.harvested[1].read_columns, vec!["a", "b"]);
    }

    #[test]
    fn insert_without_column_list_appends_positionally() {
        let Statement::Insert(i) = parse_statement("INSERT INTO t VALUES (1, 'v')").unwrap() else {
            unreachable!()
        };
        let pg = rewrite_insert(&i, 7, Flavor::Postgres, TrackingGranularity::Row);
        assert_eq!(pg.to_string(), "INSERT INTO t VALUES (1, 'v', 7)");
        let syb = rewrite_insert(&i, 7, Flavor::Sybase, TrackingGranularity::Row);
        assert_eq!(syb.to_string(), "INSERT INTO t VALUES (1, 'v', 7, NULL)");
    }

    #[test]
    fn multi_row_insert_stamps_every_tuple() {
        let Statement::Insert(i) = parse_statement("INSERT INTO t (a) VALUES (1), (2)").unwrap()
        else {
            unreachable!()
        };
        let r = rewrite_insert(&i, 9, Flavor::Oracle, TrackingGranularity::Row);
        assert_eq!(
            r.to_string(),
            "INSERT INTO t (a, trid) VALUES (1, 9), (2, 9)"
        );
    }

    #[test]
    fn create_table_gains_trid_and_sybase_identity() {
        let Statement::CreateTable(ct) =
            parse_statement("CREATE TABLE t (a INTEGER PRIMARY KEY)").unwrap()
        else {
            unreachable!()
        };
        let pg = rewrite_create_table(&ct, Flavor::Postgres, TrackingGranularity::Row);
        assert_eq!(
            pg.to_string(),
            "CREATE TABLE t (a INTEGER PRIMARY KEY, trid INTEGER)"
        );
        let syb = rewrite_create_table(&ct, Flavor::Sybase, TrackingGranularity::Row);
        assert_eq!(
            syb.to_string(),
            "CREATE TABLE t (a INTEGER PRIMARY KEY, trid INTEGER, rid INTEGER IDENTITY)"
        );
    }

    #[test]
    fn rewrites_are_idempotent_on_already_tracked_statements() {
        let Statement::CreateTable(ct) =
            parse_statement("CREATE TABLE t (a INTEGER, trid INTEGER)").unwrap()
        else {
            unreachable!()
        };
        let r = rewrite_create_table(&ct, Flavor::Postgres, TrackingGranularity::Row);
        assert_eq!(r.columns.len(), 2, "no duplicate trid column");

        let Statement::Update(u) = parse_statement("UPDATE t SET a = 1, trid = 5").unwrap() else {
            unreachable!()
        };
        assert_eq!(
            rewrite_update(&u, 9, TrackingGranularity::Row)
                .assignments
                .len(),
            2
        );
    }

    #[test]
    fn distinct_select_is_not_rewritten() {
        let s = sel("SELECT DISTINCT ol_i_id FROM order_line WHERE ol_w_id = 1");
        let out = rewrite_select(&s, TrackingGranularity::Row);
        assert_eq!(out, SelectOutcome::Passthrough(SelectSkip::Distinct));
        assert!(SelectSkip::Distinct.loses_dependencies());
    }

    #[test]
    fn select_without_from_is_not_rewritten() {
        let s = sel("SELECT 1");
        let out = rewrite_select(&s, TrackingGranularity::Row);
        assert_eq!(out, SelectOutcome::Passthrough(SelectSkip::NoFrom));
        assert!(!SelectSkip::NoFrom.loses_dependencies());
    }

    // ---- column-level tracking (§6 extension) --------------------------

    #[test]
    fn column_level_select_harvests_per_column_stamps() {
        let s = sel("SELECT w.w_tax FROM warehouse w WHERE w.w_id = 3");
        let (r, plan) = rewrite_select(&s, TrackingGranularity::Column)
            .rewritten()
            .unwrap();
        assert_eq!(
            r.to_string(),
            "SELECT w.w_tax, w.trid__w_tax AS __trid0, w.trid__w_id AS __trid1 FROM warehouse w WHERE w.w_id = 3"
        );
        assert_eq!(plan.harvested.len(), 2);
        assert_eq!(plan.harvested[0].read_columns, vec!["w_tax"]);
        assert_eq!(plan.harvested[1].read_columns, vec!["w_id"]);
    }

    #[test]
    fn column_level_wildcard_falls_back_to_row_stamp() {
        let s = sel("SELECT * FROM t");
        let (r, plan) = rewrite_select(&s, TrackingGranularity::Column)
            .rewritten()
            .unwrap();
        assert!(r.to_string().contains("t.trid AS __trid0"));
        assert_eq!(plan.harvested.len(), 1);
    }

    #[test]
    fn column_level_update_stamps_assigned_columns() {
        let Statement::Update(u) =
            parse_statement("UPDATE w SET w_ytd = w_ytd + 5 WHERE w_id = 1").unwrap()
        else {
            unreachable!()
        };
        let r = rewrite_update(&u, 7, TrackingGranularity::Column);
        assert_eq!(
            r.to_string(),
            "UPDATE w SET w_ytd = w_ytd + 5, trid__w_ytd = 7, trid = 7 WHERE w_id = 1"
        );
    }

    #[test]
    fn column_level_insert_stamps_listed_columns() {
        let Statement::Insert(i) = parse_statement("INSERT INTO t (a, b) VALUES (1, 2)").unwrap()
        else {
            unreachable!()
        };
        let r = rewrite_insert(&i, 5, Flavor::Postgres, TrackingGranularity::Column);
        assert_eq!(
            r.to_string(),
            "INSERT INTO t (a, b, trid__a, trid__b, trid) VALUES (1, 2, 5, 5, 5)"
        );
    }

    #[test]
    fn column_level_create_table_adds_stamp_columns() {
        let Statement::CreateTable(ct) =
            parse_statement("CREATE TABLE t (a INTEGER PRIMARY KEY, b FLOAT)").unwrap()
        else {
            unreachable!()
        };
        let r = rewrite_create_table(&ct, Flavor::Postgres, TrackingGranularity::Column);
        assert_eq!(
            r.to_string(),
            "CREATE TABLE t (a INTEGER PRIMARY KEY, b FLOAT, trid__a INTEGER, trid__b INTEGER, trid INTEGER)"
        );
    }

    #[test]
    fn tracking_column_predicate() {
        assert!(is_tracking_column("trid"));
        assert!(is_tracking_column("TRID__w_ytd"));
        assert!(is_tracking_column("rid"));
        assert!(!is_tracking_column("w_ytd"));
        assert!(!is_tracking_column("trident"));
    }
}
