//! The containment fence: the quarantine a live repair puts between
//! client traffic and the damage closure.
//!
//! The paper repairs offline with the database quiesced. The fence makes
//! repair concurrent with service instead: when an attack is flagged the
//! repair controller *raises* the fence over the attacker profile's
//! static blast-radius tables (known instantly, before any log analysis),
//! then *shrinks* it to row-level quarantine once the dependency analysis
//! has identified the dynamic closure, *extends* it if re-analysis grows
//! the closure mid-sweep, and *lifts* it when compensation commits.
//! Every tracked connection consults the fence on its statement path;
//! while it is down the check is one relaxed atomic load.
//!
//! A statement is blocked when it might touch quarantined data: it
//! references a wholly-fenced table, or a row-fenced table without a
//! provable primary-key disjointness (top-level `AND`ed `pk = literal`
//! equalities that miss every quarantined key). Anything unprovable is
//! blocked conservatively — soundness of the repair outranks
//! availability of one statement.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use resildb_engine::Value;
use resildb_sim::MetricsSnapshot;
use resildb_sql::{BinaryOp, Expr, Insert, Literal, Statement, UnaryOp};

use crate::config::FenceAction;

/// How long a [`FenceAction::Defer`]red statement waits for the fence to
/// shrink or lift before it is rejected after all.
pub const FENCE_DEFER_BUDGET: Duration = Duration::from_secs(2);

/// Separator joining the parts of a composite primary key into one
/// canonical string (a control character no SQL literal canonicalizes to).
const KEY_SEP: char = '\u{1}';

/// Canonical string form of one primary-key value, shared by the proxy
/// side (SQL literals out of client statements) and the repair side
/// (engine [`Value`]s out of log-record row images). `None` for NULL,
/// which never identifies a row.
pub fn canon_value(v: &Value) -> Option<String> {
    match v {
        Value::Int(i) => Some(i.to_string()),
        Value::Float(f) => Some(format!("{f}")),
        Value::Str(s) => Some(s.clone()),
        Value::Bool(b) => Some(b.to_string()),
        Value::Null => None,
    }
}

fn canon_literal(lit: &Literal) -> Option<String> {
    match lit {
        Literal::Int(i) => Some(i.to_string()),
        Literal::Float(f) => Some(format!("{f}")),
        Literal::Str(s) => Some(s.clone()),
        Literal::Bool(b) => Some(b.to_string()),
        Literal::Null => None,
    }
}

/// Joins canonical key parts (one per primary-key column, in key order)
/// into the composite form stored in [`RowFence::keys`].
pub fn composite_key<S: AsRef<str>>(parts: &[S]) -> String {
    let mut out = String::new();
    for (i, p) in parts.iter().enumerate() {
        if i > 0 {
            out.push(KEY_SEP);
        }
        out.push_str(p.as_ref());
    }
    out
}

/// Row-level quarantine over one table: which primary-key values are
/// fenced, and which columns form the key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RowFence {
    /// Lower-cased primary-key column names, in key order.
    pub key_columns: Vec<String>,
    /// Canonical composite keys (see [`composite_key`]) of fenced rows.
    pub keys: HashSet<String>,
}

#[derive(Debug, Default)]
struct FenceState {
    /// Wholly-fenced tables (lower-cased): the static phase, and any
    /// table whose rows cannot be identified by primary key.
    tables: BTreeSet<String>,
    /// Row-fenced tables (lower-cased): the dynamic phase.
    rows: HashMap<String, RowFence>,
    /// Bumped on every raise/shrink/extend/lift (forensics; deferred
    /// statements wake on the condvar, not by polling this).
    epoch: u64,
}

impl FenceState {
    fn size(&self) -> (usize, usize) {
        (
            self.tables.len(),
            self.rows.values().map(|r| r.keys.len()).sum(),
        )
    }
}

/// The outcome of presenting one statement to the fence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FenceDecision {
    /// The statement provably misses the quarantine; let it through.
    Pass,
    /// The statement may touch quarantined data; refuse it (after the
    /// defer budget, under [`FenceAction::Defer`]).
    Reject,
}

/// Shared containment fence: one per tracking-proxy factory, consulted by
/// every connection, driven by the repair controller. See module docs.
#[derive(Debug, Default)]
pub struct Fence {
    /// Fast-path flag: when false (no repair in flight) the statement
    /// path pays one relaxed load and nothing else.
    active: AtomicBool,
    state: Mutex<FenceState>,
    /// Signalled on shrink/lift so deferred statements re-check.
    changed: Condvar,
    rejected: AtomicU64,
    deferred: AtomicU64,
    passed: AtomicU64,
}

/// Point-in-time counters of a [`Fence`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FenceStats {
    /// Statements refused because they might touch quarantined data.
    pub rejected: u64,
    /// Statements that parked at least once under [`FenceAction::Defer`].
    pub deferred: u64,
    /// Statements admitted while a fence was up.
    pub passed: u64,
}

impl Fence {
    /// Creates an inactive fence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a fence is currently up (the statement-path fast check).
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// Raises the fence over `tables` (the static blast-radius surface).
    /// Returns the number of wholly-fenced tables.
    pub fn raise<I: IntoIterator<Item = String>>(&self, tables: I) -> usize {
        let mut state = self.state.lock();
        state.tables = tables.into_iter().map(|t| t.to_lowercase()).collect();
        state.rows.clear();
        state.epoch += 1;
        let n = state.tables.len();
        self.active.store(true, Ordering::Release);
        n
    }

    /// Shrinks the fence to `tables` wholly fenced plus row-level
    /// quarantines `rows`, waking deferred statements to re-check.
    /// Returns (wholly-fenced tables, fenced rows).
    pub fn shrink(
        &self,
        tables: BTreeSet<String>,
        rows: HashMap<String, RowFence>,
    ) -> (usize, usize) {
        let mut state = self.state.lock();
        state.tables = tables.into_iter().map(|t| t.to_lowercase()).collect();
        state.rows = rows
            .into_iter()
            .map(|(t, r)| (t.to_lowercase(), r))
            .collect();
        state.epoch += 1;
        let size = state.size();
        drop(state);
        self.changed.notify_all();
        size
    }

    /// Extends the row fence of `table` with additional keys (re-analysis
    /// grew the closure mid-sweep). Returns the number of keys newly
    /// fenced.
    pub fn extend<I: IntoIterator<Item = String>>(
        &self,
        table: &str,
        key_columns: &[String],
        keys: I,
    ) -> usize {
        let mut state = self.state.lock();
        let table = table.to_lowercase();
        if state.tables.contains(&table) {
            // Already wholly fenced: the rows are covered.
            return 0;
        }
        let entry = state.rows.entry(table).or_insert_with(|| RowFence {
            key_columns: key_columns.iter().map(|c| c.to_lowercase()).collect(),
            keys: HashSet::new(),
        });
        let before = entry.keys.len();
        entry.keys.extend(keys);
        let added = entry.keys.len() - before;
        state.epoch += 1;
        added
    }

    /// Lifts the fence (repair finished), waking deferred statements.
    pub fn lift(&self) {
        let mut state = self.state.lock();
        state.tables.clear();
        state.rows.clear();
        state.epoch += 1;
        self.active.store(false, Ordering::Release);
        drop(state);
        self.changed.notify_all();
    }

    /// Current fence extent: (wholly-fenced tables, fenced rows).
    pub fn size(&self) -> (usize, usize) {
        self.state.lock().size()
    }

    /// Current counters.
    pub fn stats(&self) -> FenceStats {
        FenceStats {
            rejected: self.rejected.load(Ordering::Relaxed),
            deferred: self.deferred.load(Ordering::Relaxed),
            passed: self.passed.load(Ordering::Relaxed),
        }
    }

    /// Folds the counters into `snap` under `proxy.fence.*`, plus the
    /// `repair.live.fence_size` gauge (tables + rows currently fenced).
    pub fn fold_metrics(&self, snap: &mut MetricsSnapshot) {
        let s = self.stats();
        snap.set_counter("proxy.fence.rejected", s.rejected);
        snap.set_counter("proxy.fence.deferred", s.deferred);
        snap.set_counter("proxy.fence.passed", s.passed);
        let (tables, rows) = self.size();
        snap.set_gauge("repair.live.fence_size", (tables + rows) as f64);
    }

    /// Presents `stmt` to the fence. Under [`FenceAction::Defer`] a
    /// blocked statement parks until the fence shrinks past it or lifts,
    /// up to [`FENCE_DEFER_BUDGET`]; under [`FenceAction::Reject`] it is
    /// refused immediately.
    pub fn admit(&self, stmt: &Statement, action: FenceAction) -> FenceDecision {
        let mut state = self.state.lock();
        if !self.is_active() || !blocked_by(&state, stmt) {
            self.passed.fetch_add(1, Ordering::Relaxed);
            return FenceDecision::Pass;
        }
        if action == FenceAction::Reject {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return FenceDecision::Reject;
        }
        self.deferred.fetch_add(1, Ordering::Relaxed);
        let deadline = Instant::now() + FENCE_DEFER_BUDGET;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let timed_out =
                remaining.is_zero() || { self.changed.wait_for(&mut state, remaining).timed_out() };
            if !self.is_active() || !blocked_by(&state, stmt) {
                self.passed.fetch_add(1, Ordering::Relaxed);
                return FenceDecision::Pass;
            }
            if timed_out {
                self.rejected.fetch_add(1, Ordering::Relaxed);
                return FenceDecision::Reject;
            }
        }
    }

    /// Non-blocking variant of [`Self::admit`]: would the fence block
    /// `stmt` right now? (Testing and diagnostics.)
    pub fn would_block(&self, stmt: &Statement) -> bool {
        self.is_active() && blocked_by(&self.state.lock(), stmt)
    }
}

/// Whether `stmt` may touch quarantined data under `state`.
fn blocked_by(state: &FenceState, stmt: &Statement) -> bool {
    if state.tables.is_empty() && state.rows.is_empty() {
        return false;
    }
    match stmt {
        Statement::Select(s) => {
            let single = s.from.len() == 1;
            s.from.iter().any(|t| {
                table_blocked(
                    state,
                    &t.name,
                    t.alias.as_deref(),
                    s.where_clause.as_ref(),
                    single,
                )
            })
        }
        Statement::Update(u) => table_blocked(state, &u.table, None, u.where_clause.as_ref(), true),
        Statement::Delete(d) => table_blocked(state, &d.table, None, d.where_clause.as_ref(), true),
        Statement::Insert(i) => insert_blocked(state, i),
        // Transaction control, DDL on unfenced tables, etc. pass; DDL on a
        // fenced table is blocked via referenced_tables.
        Statement::CreateTable(_) | Statement::DropTable(_) => stmt
            .referenced_tables()
            .iter()
            .any(|t| state.tables.contains(&t.to_lowercase())),
        _ => false,
    }
}

/// Whether touching `table` under `where_clause` may reach fenced rows.
fn table_blocked(
    state: &FenceState,
    table: &str,
    alias: Option<&str>,
    where_clause: Option<&Expr>,
    single_table: bool,
) -> bool {
    let lname = table.to_lowercase();
    if state.tables.contains(&lname) {
        return true;
    }
    let Some(fence) = state.rows.get(&lname) else {
        return false;
    };
    // Row-fenced: the statement passes only when every primary-key column
    // is pinned by a top-level equality and the resulting key is not
    // quarantined. Everything else could touch a fenced row.
    let Some(where_clause) = where_clause else {
        return true;
    };
    let mut eqs: HashMap<String, String> = HashMap::new();
    collect_equalities(where_clause, table, alias, single_table, &mut eqs);
    let mut parts: Vec<String> = Vec::with_capacity(fence.key_columns.len());
    for col in &fence.key_columns {
        match eqs.get(col) {
            Some(v) => parts.push(v.clone()),
            None => return true,
        }
    }
    fence.keys.contains(&composite_key(&parts))
}

/// Whether an INSERT may plant a row the fence quarantines (a client
/// re-creating a row the sweep is about to restore would collide with the
/// repair; everything else is a brand-new row and passes).
fn insert_blocked(state: &FenceState, ins: &Insert) -> bool {
    let lname = ins.table.to_lowercase();
    if state.tables.contains(&lname) {
        return true;
    }
    let Some(fence) = state.rows.get(&lname) else {
        return false;
    };
    if ins.columns.is_empty() {
        // Positional insert: key positions unknowable here — conservative.
        return true;
    }
    let mut positions: Vec<usize> = Vec::with_capacity(fence.key_columns.len());
    for col in &fence.key_columns {
        match ins.columns.iter().position(|c| c.eq_ignore_ascii_case(col)) {
            Some(p) => positions.push(p),
            None => return true, // key column defaulted: value unknowable
        }
    }
    for row in &ins.rows {
        let mut parts: Vec<String> = Vec::with_capacity(positions.len());
        for &p in &positions {
            match row.get(p).and_then(canon_expr) {
                Some(v) => parts.push(v),
                None => return true, // non-literal key expression
            }
        }
        if fence.keys.contains(&composite_key(&parts)) {
            return true;
        }
    }
    false
}

/// Canonicalizes a literal (possibly negated) key expression.
fn canon_expr(e: &Expr) -> Option<String> {
    match e {
        Expr::Literal(l) => canon_literal(l),
        Expr::Unary {
            op: UnaryOp::Neg,
            expr,
        } => match &**expr {
            Expr::Literal(Literal::Int(i)) => Some((-i).to_string()),
            Expr::Literal(Literal::Float(f)) => Some(format!("{}", -f)),
            _ => None,
        },
        _ => None,
    }
}

/// Collects `column = literal` facts from the top-level `AND` conjuncts
/// of a WHERE clause, keyed by lower-cased column name. Qualified columns
/// must match the table name or alias; unqualified columns are only
/// attributed when the statement references a single table.
fn collect_equalities(
    expr: &Expr,
    table: &str,
    alias: Option<&str>,
    single_table: bool,
    out: &mut HashMap<String, String>,
) {
    match expr {
        Expr::Binary {
            left,
            op: BinaryOp::And,
            right,
        } => {
            collect_equalities(left, table, alias, single_table, out);
            collect_equalities(right, table, alias, single_table, out);
        }
        Expr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } => {
            let (col, lit) = match (&**left, &**right) {
                (Expr::Column(c), rhs) => (c, rhs),
                (lhs, Expr::Column(c)) => (c, lhs),
                _ => return,
            };
            let qualified_ok = match &col.table {
                None => single_table,
                Some(q) => {
                    q.eq_ignore_ascii_case(table)
                        || alias.is_some_and(|a| q.eq_ignore_ascii_case(a))
                }
            };
            if qualified_ok {
                if let Some(v) = canon_expr(lit) {
                    out.insert(col.column.to_lowercase(), v);
                }
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resildb_sql::parse_statement;

    fn stmt(sql: &str) -> Statement {
        parse_statement(sql).expect("test SQL parses")
    }

    fn row_fence(cols: &[&str], keys: &[&[&str]]) -> RowFence {
        RowFence {
            key_columns: cols.iter().map(|c| c.to_string()).collect(),
            keys: keys.iter().map(|k| composite_key(k)).collect(),
        }
    }

    #[test]
    fn inactive_fence_passes_everything() {
        let f = Fence::new();
        assert!(!f.is_active());
        assert!(!f.would_block(&stmt("UPDATE account SET b = 1 WHERE id = 1")));
    }

    #[test]
    fn static_phase_fences_whole_tables() {
        let f = Fence::new();
        let n = f.raise(vec!["Account".into(), "orders".into()]);
        assert_eq!(n, 2);
        assert!(f.is_active());
        assert!(f.would_block(&stmt("SELECT * FROM account WHERE id = 1")));
        assert!(f.would_block(&stmt("DELETE FROM ORDERS")));
        assert!(f.would_block(&stmt("INSERT INTO account (id) VALUES (99)")));
        assert!(!f.would_block(&stmt("SELECT * FROM customer WHERE id = 1")));
        assert_eq!(
            f.admit(
                &stmt("UPDATE account SET b = 1 WHERE id = 1"),
                FenceAction::Reject
            ),
            FenceDecision::Reject
        );
        assert_eq!(
            f.admit(&stmt("SELECT * FROM customer"), FenceAction::Reject),
            FenceDecision::Pass
        );
        let s = f.stats();
        assert_eq!((s.rejected, s.passed), (1, 1));
    }

    #[test]
    fn row_phase_passes_provably_disjoint_statements() {
        let f = Fence::new();
        f.raise(vec!["account".into()]);
        f.shrink(
            BTreeSet::new(),
            [("account".to_string(), row_fence(&["id"], &[&["7"], &["9"]]))]
                .into_iter()
                .collect(),
        );
        // Provably disjoint: pk pinned to a non-fenced key.
        assert!(!f.would_block(&stmt("SELECT * FROM account WHERE id = 1")));
        assert!(!f.would_block(&stmt("UPDATE account SET b = 0 WHERE id = 3 AND b > 1")));
        // Fenced key, commuted equality, or unprovable predicate: blocked.
        assert!(f.would_block(&stmt("SELECT * FROM account WHERE id = 7")));
        assert!(f.would_block(&stmt("SELECT * FROM account WHERE 9 = id")));
        assert!(f.would_block(&stmt("UPDATE account SET b = 0 WHERE b < 100")));
        assert!(f.would_block(&stmt("DELETE FROM account")));
        // OR disjunction cannot pin the key.
        assert!(f.would_block(&stmt("SELECT * FROM account WHERE id = 1 OR id = 7")));
    }

    #[test]
    fn composite_keys_need_every_column_pinned() {
        let f = Fence::new();
        f.raise(vec!["stock".into()]);
        f.shrink(
            BTreeSet::new(),
            [(
                "stock".to_string(),
                row_fence(&["w_id", "i_id"], &[&["1", "5"]]),
            )]
            .into_iter()
            .collect(),
        );
        assert!(!f.would_block(&stmt("SELECT * FROM stock WHERE w_id = 1 AND i_id = 6")));
        assert!(f.would_block(&stmt("SELECT * FROM stock WHERE w_id = 1 AND i_id = 5")));
        assert!(f.would_block(&stmt("SELECT * FROM stock WHERE w_id = 1")));
    }

    #[test]
    fn inserts_pass_unless_they_replant_a_fenced_key() {
        let f = Fence::new();
        f.raise(vec!["account".into()]);
        f.shrink(
            BTreeSet::new(),
            [("account".to_string(), row_fence(&["id"], &[&["7"]]))]
                .into_iter()
                .collect(),
        );
        assert!(!f.would_block(&stmt("INSERT INTO account (id, b) VALUES (8, 0)")));
        assert!(f.would_block(&stmt("INSERT INTO account (id, b) VALUES (7, 0)")));
        // Positional inserts and computed keys are conservative.
        assert!(f.would_block(&stmt("INSERT INTO account VALUES (8, 0)")));
    }

    #[test]
    fn extend_grows_the_row_fence_and_lift_clears_it() {
        let f = Fence::new();
        f.raise(vec!["account".into()]);
        f.shrink(
            BTreeSet::new(),
            [("account".to_string(), row_fence(&["id"], &[&["7"]]))]
                .into_iter()
                .collect(),
        );
        assert!(!f.would_block(&stmt("SELECT * FROM account WHERE id = 4")));
        let added = f.extend("account", &["id".into()], vec!["4".to_string()]);
        assert_eq!(added, 1);
        assert!(f.would_block(&stmt("SELECT * FROM account WHERE id = 4")));
        assert_eq!(f.size(), (0, 2));
        f.lift();
        assert!(!f.is_active());
        assert!(!f.would_block(&stmt("SELECT * FROM account WHERE id = 7")));
    }

    #[test]
    fn deferred_statement_passes_once_the_fence_lifts() {
        use std::sync::Arc;
        let f = Arc::new(Fence::new());
        f.raise(vec!["account".into()]);
        let f2 = Arc::clone(&f);
        let waiter = std::thread::spawn(move || {
            f2.admit(
                &stmt("SELECT * FROM account WHERE id = 1"),
                FenceAction::Defer,
            )
        });
        // Give the waiter a moment to park, then lift.
        std::thread::sleep(Duration::from_millis(50));
        f.lift();
        assert_eq!(waiter.join().unwrap(), FenceDecision::Pass);
        let s = f.stats();
        assert_eq!((s.deferred, s.passed, s.rejected), (1, 1, 0));
    }

    #[test]
    fn metrics_fold_counters_and_gauge() {
        let f = Fence::new();
        f.raise(vec!["a".into(), "b".into()]);
        f.admit(&stmt("SELECT * FROM a"), FenceAction::Reject);
        f.admit(&stmt("SELECT * FROM c"), FenceAction::Reject);
        let mut snap = MetricsSnapshot::default();
        f.fold_metrics(&mut snap);
        assert_eq!(snap.counter("proxy.fence.rejected"), 1);
        assert_eq!(snap.counter("proxy.fence.passed"), 1);
        assert_eq!(snap.counter("proxy.fence.deferred"), 0);
        assert_eq!(snap.gauge("repair.live.fence_size"), Some(2.0));
    }

    #[test]
    fn value_and_literal_canonical_forms_agree() {
        assert_eq!(
            canon_value(&Value::Int(42)).as_deref(),
            canon_literal(&Literal::Int(42)).as_deref()
        );
        assert_eq!(
            canon_value(&Value::Str("x".into())).as_deref(),
            canon_literal(&Literal::Str("x".into())).as_deref()
        );
        assert_eq!(
            canon_value(&Value::Float(1.5)).as_deref(),
            canon_literal(&Literal::Float(1.5)).as_deref()
        );
        assert_eq!(canon_value(&Value::Null), None);
    }
}
