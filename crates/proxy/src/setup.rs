//! One-time database preparation: the tracking tables of paper §3.2.

use resildb_wire::{Connection, WireError};

/// Table recording, per committed transaction, the set of transactions it
/// depends on (`tr_id INTEGER, dep_tr_ids VARCHAR` — the paper's exact
/// schema; IDs are space-separated, long sets spill onto multiple rows).
pub const TRANS_DEP_TABLE: &str = "trans_dep";

/// Table giving each transaction a symbolic name for graph visualisation.
pub const ANNOT_TABLE: &str = "annot";

/// Companion provenance table: one row per dependency edge with the table
/// that mediated it and the columns the reader touched — machine-checkable
/// input for the false-dependency filtering of paper §5.3.
pub const PROV_TABLE: &str = "trans_dep_prov";

/// All tracking tables, in creation order.
pub const TRACKING_TABLES: [&str; 3] = [TRANS_DEP_TABLE, ANNOT_TABLE, PROV_TABLE];

/// Creates the tracking tables on a *raw* (non-proxy) connection. The
/// tables deliberately bypass the proxy's CREATE TABLE interception: they
/// carry no `trid` column themselves, and the `trans_dep` insert that lands
/// right before each COMMIT in the transaction log is the anchor the repair
/// tool uses to correlate proxy and internal transaction ids.
///
/// # Errors
///
/// Propagates DDL failures (e.g. the tables already exist).
///
/// # Examples
///
/// ```
/// use resildb_engine::{Database, Flavor};
/// use resildb_wire::{Driver, LinkProfile, NativeDriver};
///
/// # fn main() -> Result<(), resildb_wire::WireError> {
/// let db = Database::in_memory(Flavor::Oracle);
/// let native = NativeDriver::new(db.clone(), LinkProfile::local());
/// resildb_proxy::prepare_database(&mut *native.connect()?)?;
/// assert!(db.table_names().contains(&"trans_dep".to_string()));
/// # Ok(())
/// # }
/// ```
pub fn prepare_database(conn: &mut dyn Connection) -> Result<(), WireError> {
    // Each tracking table carries an identity column so that even the
    // Sybase-flavor repair path (which has no row-id pseudo-column) can
    // address and compensate rows in them.
    conn.execute(
        "CREATE TABLE trans_dep (tr_id INTEGER, dep_tr_ids VARCHAR(200), \
         rid INTEGER IDENTITY)",
    )?;
    conn.execute("CREATE TABLE annot (tr_id INTEGER, descr VARCHAR(64), rid INTEGER IDENTITY)")?;
    conn.execute(
        "CREATE TABLE trans_dep_prov (tr_id INTEGER, dep_tr_id INTEGER, \
         via_table VARCHAR(32), read_cols VARCHAR(200), rid INTEGER IDENTITY)",
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use resildb_engine::{Database, Flavor};
    use resildb_wire::{Driver, LinkProfile, NativeDriver};

    #[test]
    fn creates_all_tracking_tables() {
        let db = Database::in_memory(Flavor::Sybase);
        let native = NativeDriver::new(db.clone(), LinkProfile::local());
        prepare_database(&mut *native.connect().unwrap()).unwrap();
        let names = db.table_names();
        for t in TRACKING_TABLES {
            assert!(names.contains(&t.to_string()), "{t} missing");
        }
        // Tracking tables have no trid column (raw DDL).
        let schema = db.table("trans_dep").unwrap().read().schema().clone();
        assert!(!schema.has_column("trid"));
    }

    #[test]
    fn double_preparation_errors() {
        let db = Database::in_memory(Flavor::Postgres);
        let native = NativeDriver::new(db, LinkProfile::local());
        let mut conn = native.connect().unwrap();
        prepare_database(&mut *conn).unwrap();
        assert!(prepare_database(&mut *conn).is_err());
    }
}
