//! The tracking interceptor: per-connection transaction state, harvesting,
//! and commit-time dependency recording.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use resildb_engine::{Database, EngineError, Value};
use resildb_sim::telemetry::names as span_names;
use resildb_sim::{
    failpoints, EventKind, InjectedFault, MetricsSnapshot, Micros, OwnedSpan, SimContext,
    Telemetry, TraceVerdict,
};
use resildb_sql::{
    collect_params, parse_template, scan_statement, Expr, SqlTemplate, Statement, StatementScan,
    TRID_PARAM,
};
use resildb_wire::{
    dual_proxy, single_proxy, Connection, InterceptDriver, Interceptor, InterceptorFactory,
    LinkProfile, NativeDriver, Response, WireError,
};

use resildb_analyze::{classify_statement, Verdict};

use crate::cache::{CacheEntry, CachedShape, RewriteCache};
use crate::config::{EnforcementPolicy, ProxyConfig};
use crate::depstore::DepStore;
use crate::fence::{Fence, FenceDecision};
use crate::rewrite::{
    rewrite_create_table, rewrite_insert, rewrite_insert_with, rewrite_select, rewrite_update,
    rewrite_update_with, COLUMN_TRID_PREFIX, HARVEST_ALIAS_PREFIX, IDENTITY_COLUMN, TRID_COLUMN,
};
use crate::setup::TRACKING_TABLES;

/// A proxy-generated transaction id. Distinct from the DBMS-internal id;
/// the repair tool correlates the two from the transaction log (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProxyTxnId(pub i64);

impl std::fmt::Display for ProxyTxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ptx:{}", self.0)
    }
}

/// Shared counters of the static-analysis enforcement layer: how many
/// statements of each verdict class the proxy saw, and how many the
/// [`EnforcementPolicy::Reject`] policy refused. Counted only when the
/// policy is `Warn` or `Reject`; under `Allow` (the paper's behaviour) the
/// classifier stays entirely off the statement path.
#[derive(Debug, Default)]
pub struct TrackerStats {
    sound: AtomicU64,
    degraded: AtomicU64,
    untracked: AtomicU64,
    rejected: AtomicU64,
}

impl TrackerStats {
    fn count(&self, verdict: &Verdict) {
        let counter = match verdict {
            Verdict::Sound => &self.sound,
            Verdict::Degraded(_) => &self.degraded,
            Verdict::Untracked(_) => &self.untracked,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn count_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Current counters.
    pub fn snapshot(&self) -> TrackerStatsSnapshot {
        TrackerStatsSnapshot {
            sound: self.sound.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            untracked: self.untracked.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
        }
    }

    /// Folds the counters into `snap` under the `proxy.enforcement.*`
    /// metric names.
    pub fn fold_metrics(&self, snap: &mut MetricsSnapshot) {
        let s = self.snapshot();
        snap.set_counter("proxy.enforcement.sound", s.sound);
        snap.set_counter("proxy.enforcement.degraded", s.degraded);
        snap.set_counter("proxy.enforcement.untracked", s.untracked);
        snap.set_counter("proxy.enforcement.rejected", s.rejected);
    }
}

/// Point-in-time view of [`TrackerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrackerStatsSnapshot {
    /// Statements classified fully soundly tracked.
    pub sound: u64,
    /// Statements classified degraded (tracked, but coarser).
    pub degraded: u64,
    /// Statements classified untracked (dependencies lost).
    pub untracked: u64,
    /// Untracked statements refused under [`EnforcementPolicy::Reject`].
    pub rejected: u64,
}

/// The live-repair control surface of one proxy factory: the containment
/// [`Fence`] every connection consults, plus the in-flight state the
/// repair controller needs to raise it *safely* — the transaction-id
/// allocator (for the drain watermark) and the in-flight ledger (to wait
/// until every pre-fence transaction has finished, so the log analysis
/// that follows sees a complete prefix).
#[derive(Debug)]
pub struct ProxyRuntime {
    fence: Fence,
    counter: Arc<AtomicI64>,
    deps: Arc<DepStore>,
}

impl ProxyRuntime {
    /// The shared containment fence.
    pub fn fence(&self) -> &Fence {
        &self.fence
    }

    /// The next transaction id the allocator would hand out. Every
    /// transaction that began before this call has a smaller id, so this
    /// is the drain watermark to pair with [`Self::any_inflight_below`].
    pub fn trid_watermark(&self) -> i64 {
        self.counter.load(Ordering::SeqCst)
    }

    /// Whether any transaction with an id below `watermark` is still in
    /// flight (see [`DepStore::any_inflight_below`]).
    pub fn any_inflight_below(&self, watermark: i64) -> bool {
        self.deps.any_inflight_below(watermark)
    }
}

/// A driver (or factory) plus the shared handles behind it that the
/// `ResilientDb` facade retains: rewrite cache, enforcement statistics,
/// in-flight dependency ledger, and the live-repair runtime.
pub type Instrumented<D> = (
    D,
    Arc<RewriteCache>,
    Arc<TrackerStats>,
    Arc<DepStore>,
    Arc<ProxyRuntime>,
);

/// Constructors for tracking-proxy drivers.
///
/// The proxy id sequence is shared by every connection made through one
/// driver, mirroring the paper's single proxy process.
#[derive(Debug)]
pub struct TrackingProxy;

impl TrackingProxy {
    /// An [`InterceptorFactory`] running the tracker, for custom wiring.
    /// Without a simulation context the tracker's own CPU costs are not
    /// charged; prefer [`Self::factory_with_sim`].
    pub fn factory(config: ProxyConfig) -> Box<dyn InterceptorFactory> {
        Self::factory_inner(config, None).0
    }

    /// Like [`Self::factory`], charging rewrite/harvest CPU to `sim`.
    pub fn factory_with_sim(config: ProxyConfig, sim: SimContext) -> Box<dyn InterceptorFactory> {
        Self::factory_inner(config, Some(sim)).0
    }

    fn factory_inner(
        config: ProxyConfig,
        sim: Option<SimContext>,
    ) -> Instrumented<Box<dyn InterceptorFactory>> {
        let counter = Arc::new(AtomicI64::new(1));
        let sessions = Arc::new(AtomicU64::new(1));
        let cache = Arc::new(RewriteCache::new(config.rewrite_cache_capacity));
        let stats = Arc::new(TrackerStats::default());
        let deps = Arc::new(DepStore::new());
        let runtime = Arc::new(ProxyRuntime {
            fence: Fence::new(),
            counter: Arc::clone(&counter),
            deps: Arc::clone(&deps),
        });
        let deps_handle = Arc::clone(&deps);
        let cache_handle = Arc::clone(&cache);
        let stats_handle = Arc::clone(&stats);
        let runtime_handle = Arc::clone(&runtime);
        let factory = Box::new(move || {
            Box::new(Tracker {
                config: config.clone(),
                counter: Arc::clone(&counter),
                session: sessions.fetch_add(1, Ordering::Relaxed),
                cache: Arc::clone(&cache),
                stats: Arc::clone(&stats),
                deps: Arc::clone(&deps),
                runtime: Arc::clone(&runtime),
                txn: None,
                next_annotation: None,
                sim: sim.clone(),
            }) as Box<dyn Interceptor>
        });
        (
            factory,
            cache_handle,
            stats_handle,
            deps_handle,
            runtime_handle,
        )
    }

    /// Figure 1 deployment: client-side proxy driver over `link`.
    pub fn single_proxy(
        db: Database,
        link: LinkProfile,
        config: ProxyConfig,
    ) -> InterceptDriver<NativeDriver> {
        Self::single_proxy_with_cache(db, link, config).0
    }

    /// Like [`Self::single_proxy`], additionally returning a handle to the
    /// shared rewrite cache so callers can inspect hit/miss/eviction
    /// counters.
    pub fn single_proxy_with_cache(
        db: Database,
        link: LinkProfile,
        config: ProxyConfig,
    ) -> (InterceptDriver<NativeDriver>, Arc<RewriteCache>) {
        let sim = db.sim().clone();
        let (factory, cache, _, _, _) = Self::factory_inner(config, Some(sim));
        (single_proxy(db, link, factory), cache)
    }

    /// Like [`Self::single_proxy`], additionally returning a handle to the
    /// shared enforcement statistics (verdict and rejection counters).
    pub fn single_proxy_with_stats(
        db: Database,
        link: LinkProfile,
        config: ProxyConfig,
    ) -> (InterceptDriver<NativeDriver>, Arc<TrackerStats>) {
        let sim = db.sim().clone();
        let (factory, _, stats, _, _) = Self::factory_inner(config, Some(sim));
        (single_proxy(db, link, factory), stats)
    }

    /// Like [`Self::single_proxy`], additionally returning handles to the
    /// shared rewrite cache, the enforcement statistics, the in-flight
    /// dependency store and the live-repair runtime (fence + drain state)
    /// — what the `ResilientDb` facade retains so `metrics()` can fold
    /// every proxy counter into one snapshot and live repair can drive
    /// the fence.
    pub fn single_proxy_instrumented(
        db: Database,
        link: LinkProfile,
        config: ProxyConfig,
    ) -> Instrumented<InterceptDriver<NativeDriver>> {
        let sim = db.sim().clone();
        let (factory, cache, stats, deps, runtime) = Self::factory_inner(config, Some(sim));
        (single_proxy(db, link, factory), cache, stats, deps, runtime)
    }

    /// Figure 2 deployment: client proxy + server proxy pair; the tracker
    /// and its extra statements run on the server-side (local) leg.
    pub fn dual_proxy(
        db: Database,
        link: LinkProfile,
        config: ProxyConfig,
    ) -> resildb_wire::DualProxyDriver {
        Self::dual_proxy_instrumented(db, link, config).0
    }

    /// Like [`Self::dual_proxy`], additionally returning the rewrite-cache,
    /// enforcement-stats, dependency-store and live-repair runtime handles.
    pub fn dual_proxy_instrumented(
        db: Database,
        link: LinkProfile,
        config: ProxyConfig,
    ) -> Instrumented<resildb_wire::DualProxyDriver> {
        let sim = db.sim().clone();
        let (factory, cache, stats, deps, runtime) = Self::factory_inner(config, Some(sim));
        (dual_proxy(db, link, factory), cache, stats, deps, runtime)
    }
}

#[derive(Debug)]
struct TxnTrack {
    trid: i64,
    explicit: bool,
    deps: BTreeSet<i64>,
    /// (dep, via_table, read_cols) — deduplicated.
    prov: Vec<(i64, String, String)>,
    annotation: Option<String>,
    /// Whether the transaction executed any write statement; read-only
    /// transactions get no tracking record unless configured otherwise.
    wrote: bool,
}

impl TxnTrack {
    fn new(trid: i64, explicit: bool, annotation: Option<String>) -> Self {
        Self {
            trid,
            explicit,
            deps: BTreeSet::new(),
            prov: Vec::new(),
            annotation,
            wrote: false,
        }
    }
}

/// Retires a transaction from the dependency ledger if the commit path
/// unwinds before reaching a regular retirement.
///
/// The commit-time tracking writes and the downstream COMMIT both
/// traverse failpoints that can panic ([`resildb_sim::FaultAction::Panic`]
/// on `proxy.*` or `engine.wal_commit`), and a panic skips every
/// statement after the failpoint — including the `DepStore` retirement.
/// Without this guard the ledger keeps the entry forever and the
/// `proxy.trans_dep.inflight` gauge leaks a permanently-stuck count. The
/// guard owns clones of the shared handles (no borrows of the tracker),
/// so the regular paths `defuse` it and retire explicitly; only an unwind
/// reaches its `Drop`.
struct RetireOnUnwind {
    deps: Arc<DepStore>,
    tel: Option<Telemetry>,
    trid: i64,
    session: u64,
    armed: bool,
}

impl RetireOnUnwind {
    fn arm(deps: Arc<DepStore>, tel: Option<Telemetry>, trid: i64, session: u64) -> Self {
        Self {
            deps,
            tel,
            trid,
            session,
            armed: true,
        }
    }

    /// The regular paths retire the transaction themselves; defusing
    /// hands responsibility back to them.
    fn defuse(&mut self) {
        self.armed = false;
    }
}

impl Drop for RetireOnUnwind {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        self.deps.abort(self.trid, self.tel.as_ref());
        if let Some(t) = &self.tel {
            t.flight().emit(self.trid, self.session, EventKind::Abort);
        }
    }
}

struct Tracker {
    config: ProxyConfig,
    counter: Arc<AtomicI64>,
    /// Flight-recorder session (connection) id, unique per proxy factory.
    session: u64,
    /// Statement-shape → rewrite-template cache shared across all
    /// connections of this proxy factory.
    cache: Arc<RewriteCache>,
    /// Enforcement counters shared across all connections.
    stats: Arc<TrackerStats>,
    /// Sharded factory-wide ledger of in-flight tracked transactions.
    deps: Arc<DepStore>,
    /// Live-repair control surface (containment fence + drain state)
    /// shared across all connections of this factory.
    runtime: Arc<ProxyRuntime>,
    txn: Option<TxnTrack>,
    /// Annotation staged by `ANNOTATE` before the transaction begins.
    next_annotation: Option<String>,
    /// Virtual clock to charge the proxy's own CPU costs to.
    sim: Option<SimContext>,
}

fn sql_str(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

/// Drops the columns flagged in `strip` from a result set.
fn strip_columns(qr: resildb_engine::QueryResult, strip: &[bool]) -> resildb_engine::QueryResult {
    let columns = qr
        .columns
        .iter()
        .zip(strip)
        .filter(|(_, s)| !**s)
        .map(|(c, _)| c.clone())
        .collect();
    let rows = qr
        .rows
        .into_iter()
        .map(|row| {
            row.into_iter()
                .zip(strip)
                .filter(|(_, s)| !**s)
                .map(|(v, _)| v)
                .collect()
        })
        .collect();
    resildb_engine::QueryResult { columns, rows }
}

fn is_tracking_table(name: &str) -> bool {
    TRACKING_TABLES.iter().any(|t| t.eq_ignore_ascii_case(name))
}

impl Tracker {
    fn alloc_trid(&self) -> i64 {
        self.counter.fetch_add(1, Ordering::Relaxed)
    }

    /// The telemetry domain the tracker reports into: the domain named by
    /// the config when set, else the simulation context's domain.
    fn tel(&self) -> Option<&Telemetry> {
        match &self.config.telemetry {
            Some(t) => Some(t),
            None => self.sim.as_ref().map(SimContext::telemetry),
        }
    }

    /// Starts a telemetry span (disabled by default, so this costs one
    /// relaxed atomic load on untelemetered deployments).
    fn tel_span(&self, name: &'static str) -> Option<OwnedSpan> {
        self.tel().map(|t| t.owned_span(name))
    }

    /// Whether flight-recorder event tracing is live — the one relaxed
    /// load guarding every emission site, so callers can skip building
    /// event payloads (strings) on the disabled path.
    fn tracing(&self) -> bool {
        self.tel().is_some_and(|t| t.flight().is_enabled())
    }

    /// Records one flight-recorder event, stamped with this connection's
    /// session id.
    fn trace(&self, txn: i64, kind: EventKind) {
        if let Some(t) = self.tel() {
            t.flight().emit(txn, self.session, kind);
        }
    }

    /// Records the statement-interception event: rewrite-cache outcome
    /// plus the enforcement verdict the statement got.
    fn trace_rewrite(&self, cache_hit: bool, verdict: Option<&Verdict>) {
        if !self.tracing() {
            return;
        }
        let verdict = match verdict {
            None => TraceVerdict::Unchecked,
            Some(Verdict::Sound) => TraceVerdict::Sound,
            Some(Verdict::Degraded(_)) => TraceVerdict::Degraded,
            Some(Verdict::Untracked(_)) => {
                if self.config.enforcement == EnforcementPolicy::Reject {
                    TraceVerdict::Rejected
                } else {
                    TraceVerdict::Untracked
                }
            }
        };
        let txn = self.txn.as_ref().map_or(0, |t| t.trid);
        self.trace(txn, EventKind::StmtRewrite { cache_hit, verdict });
    }

    /// Forgets the open transaction, flight-recording its abort and
    /// retiring it from the dependency ledger without a record.
    fn clear_txn(&mut self) {
        if let Some(t) = self.txn.take() {
            self.deps.abort(t.trid, self.tel());
            self.trace(t.trid, EventKind::Abort);
        }
    }

    /// Charges the interception/parsing/rewriting cost for one statement.
    fn charge_rewrite(&self) {
        if let Some(sim) = &self.sim {
            sim.advance(self.config.rewrite_cpu);
        }
    }

    /// Charges the much smaller replay cost of a rewrite-cache hit
    /// (fingerprint hash + literal splice).
    fn charge_rewrite_cached(&self) {
        if let Some(sim) = &self.sim {
            sim.advance(self.config.rewrite_cached_cpu);
        }
    }

    /// Charges the harvesting/stripping cost for `rows` result rows.
    fn charge_harvest(&self, rows: usize) {
        if let Some(sim) = &self.sim {
            sim.advance(Micros::from_nanos(
                self.config.harvest_per_row_ns * rows as u64,
            ));
        }
    }

    /// Whether the finished transaction warrants tracking rows.
    fn should_record(&self, t: &TxnTrack) -> bool {
        self.config.record_deps_at_commit && (t.wrote || self.config.record_read_only_deps)
    }

    /// Evaluates a proxy failpoint against the shared fault plan (inert
    /// when the tracker runs without a simulation context).
    fn fault(&self, name: &str) -> Result<(), WireError> {
        let Some(sim) = &self.sim else {
            return Ok(());
        };
        match sim.fault_check(name) {
            None => Ok(()),
            Some(InjectedFault::Disconnect) => Err(WireError::ConnectionDropped),
            Some(InjectedFault::Error) => Err(WireError::Protocol(format!(
                "injected fault at failpoint {name}"
            ))),
            Some(InjectedFault::Delay(_)) => unreachable!("fault_check consumes delays"),
        }
    }

    /// Classifies `stmt` for enforcement, or `None` when the statement is
    /// exempt (the proxy's own tracking-table bookkeeping) or the policy
    /// is [`EnforcementPolicy::Allow`] (classifier off the statement
    /// path, the paper's behaviour).
    fn classify_for_enforcement(&self, stmt: &Statement) -> Option<Verdict> {
        if self.config.enforcement == EnforcementPolicy::Allow {
            return None;
        }
        if let Some(first) = stmt.referenced_tables().first() {
            if is_tracking_table(first) {
                return None;
            }
        }
        Some(classify_statement(stmt, self.config.granularity.into()))
    }

    /// Counts `verdict` and, under [`EnforcementPolicy::Reject`], refuses
    /// untracked statements before they reach the DBMS.
    fn enforce(&self, verdict: &Verdict) -> Result<(), WireError> {
        self.stats.count(verdict);
        if verdict.is_untracked() && self.config.enforcement == EnforcementPolicy::Reject {
            self.stats.count_rejected();
            return Err(WireError::Protocol(format!(
                "statement refused by tracking enforcement policy: {verdict}"
            )));
        }
        Ok(())
    }

    /// Forgets the current transaction and rolls the downstream one back,
    /// so proxy and engine agree it is gone. The rollback is best-effort:
    /// on a dead connection or an engine-aborted transaction (deadlock)
    /// there is nothing left to roll back and the attempt fails harmlessly.
    fn abort_txn(&mut self, downstream: &mut dyn Connection) {
        self.clear_txn();
        let _ = downstream.execute("ROLLBACK");
    }

    /// Writes the provenance, annotation and (last) trans_dep rows for a
    /// finished transaction. Ordering matters: the paper's correlation rule
    /// is that the last log record before a COMMIT is an insert into
    /// `trans_dep`.
    fn write_tracking_rows(
        &self,
        t: &TxnTrack,
        downstream: &mut dyn Connection,
    ) -> Result<(), WireError> {
        let _span = self.tel_span(span_names::PROXY_TRANS_DEP_INSERT);
        if self.config.record_provenance && !t.prov.is_empty() {
            let tuples: Vec<String> = t
                .prov
                .iter()
                .map(|(dep, table, cols)| {
                    format!(
                        "({}, {}, {}, {})",
                        t.trid,
                        dep,
                        sql_str(table),
                        sql_str(&cols.chars().take(200).collect::<String>())
                    )
                })
                .collect();
            downstream.execute(&format!(
                "INSERT INTO trans_dep_prov (tr_id, dep_tr_id, via_table, read_cols) VALUES {}",
                tuples.join(", ")
            ))?;
        }
        // The annot table carries client-supplied symbolic names for graph
        // visualisation; unannotated transactions get no row (the graph
        // falls back to a generated `txn_<id>` label).
        if let Some(descr) = &t.annotation {
            downstream.execute(&format!(
                "INSERT INTO annot (tr_id, descr) VALUES ({}, {})",
                t.trid,
                sql_str(&descr.chars().take(64).collect::<String>())
            ))?;
        }
        // Space-separated dependency ids, split across rows at 200 chars
        // (the column's declared width).
        let ids: Vec<String> = t.deps.iter().map(i64::to_string).collect();
        let mut chunks: Vec<String> = Vec::new();
        let mut cur = String::new();
        for id in ids {
            if !cur.is_empty() && cur.len() + 1 + id.len() > 200 {
                chunks.push(std::mem::take(&mut cur));
            }
            if !cur.is_empty() {
                cur.push(' ');
            }
            cur.push_str(&id);
        }
        chunks.push(cur);
        let tuples: Vec<String> = chunks
            .iter()
            .map(|c| format!("({}, {})", t.trid, sql_str(c)))
            .collect();
        self.fault(failpoints::PROXY_BEFORE_TRANS_DEP_INSERT)?;
        downstream.execute(&format!(
            "INSERT INTO trans_dep (tr_id, dep_tr_ids) VALUES {}",
            tuples.join(", ")
        ))?;
        self.trace(
            t.trid,
            EventKind::TransDepInsert {
                deps: u32::try_from(t.deps.len()).unwrap_or(u32::MAX),
            },
        );
        self.fault(failpoints::PROXY_AFTER_TRANS_DEP_INSERT)?;
        Ok(())
    }

    /// Whether result column `name` belongs to the tracking layer and must
    /// be hidden from clients: harvest aliases, the `trid` stamp, the
    /// per-column `trid__*` stamps, and (only where the flavor needed the
    /// identity workaround) the injected `rid` column.
    fn is_hidden_column(&self, name: &str) -> bool {
        // `get` rather than direct slicing: a multi-byte column name whose
        // char boundaries straddle the prefix length must compare unequal,
        // not panic.
        name.starts_with(HARVEST_ALIAS_PREFIX)
            || name.eq_ignore_ascii_case(TRID_COLUMN)
            || name
                .get(..COLUMN_TRID_PREFIX.len())
                .is_some_and(|p| p.eq_ignore_ascii_case(COLUMN_TRID_PREFIX))
            || self.config.flavor.rowid_pseudocolumn().is_none()
                && name.eq_ignore_ascii_case(IDENTITY_COLUMN)
    }

    /// Strips tracking columns from a pass-through result (aggregate or
    /// DISTINCT selects, which are not rewritten but whose wildcards can
    /// still expose injected columns).
    fn strip_only(&self, resp: Response) -> Response {
        let Response::Rows(qr) = resp else {
            return resp;
        };
        let strip: Vec<bool> = qr
            .columns
            .iter()
            .map(|c| self.is_hidden_column(c))
            .collect();
        if !strip.iter().any(|s| *s) {
            return Response::Rows(qr);
        }
        Response::Rows(strip_columns(qr, &strip))
    }

    /// Removes harvested trid columns from a result, folding their values
    /// into the current transaction's dependency set.
    fn harvest_and_strip(
        &mut self,
        resp: Response,
        plan: &crate::rewrite::SelectRewrite,
    ) -> Result<Response, WireError> {
        let _span = self.tel_span(span_names::PROXY_HARVEST);
        self.fault(failpoints::PROXY_HARVEST)?;
        let Response::Rows(qr) = resp else {
            return Ok(resp);
        };
        self.charge_harvest(qr.rows.len());
        // Columns to strip: our harvest aliases plus any tracking column a
        // wildcard expansion leaked.
        let mut strip = vec![false; qr.columns.len()];
        let mut harvest_cols: Vec<(usize, usize)> = Vec::new(); // (col idx, plan idx)
        for (i, name) in qr.columns.iter().enumerate() {
            if let Some(k) = name.strip_prefix(HARVEST_ALIAS_PREFIX) {
                strip[i] = true;
                if let Ok(k) = k.parse::<usize>() {
                    harvest_cols.push((i, k));
                }
            } else if self.is_hidden_column(name) {
                strip[i] = true;
            }
        }
        let tracing = self.tracing();
        let mut harvested: Vec<(i64, i64, String)> = Vec::new();
        if let Some(txn) = &mut self.txn {
            for row in &qr.rows {
                for &(col, k) in &harvest_cols {
                    if let Some(Value::Int(v)) = row.get(col) {
                        let v = *v;
                        if v > 0 && v != txn.trid && txn.deps.insert(v) {
                            let src = plan.harvested.get(k);
                            if tracing {
                                harvested.push((
                                    txn.trid,
                                    v,
                                    src.map(|s| s.table.clone()).unwrap_or_default(),
                                ));
                            }
                            if let Some(src) = src {
                                txn.prov
                                    .push((v, src.table.clone(), src.read_columns.join(",")));
                            }
                        }
                    }
                }
            }
        }
        for (trid, dep, table) in harvested {
            self.trace(trid, EventKind::DepHarvested { dep, table });
        }
        Ok(Response::Rows(strip_columns(qr, &strip)))
    }

    /// Executes a write statement within the current transaction, opening
    /// (and afterwards committing) an implicit one when none is active.
    /// `make_sql` receives the current proxy transaction id for rewriting.
    fn execute_write(
        &mut self,
        downstream: &mut dyn Connection,
        make_sql: impl FnOnce(i64) -> String,
    ) -> Result<Response, WireError> {
        let implicit = self.txn.is_none();
        if implicit {
            let trid = self.alloc_trid();
            let annotation = self.next_annotation.take();
            downstream.execute("BEGIN")?;
            self.txn = Some(TxnTrack::new(trid, false, annotation));
            self.deps.begin(trid, self.tel());
            self.trace(trid, EventKind::TxnBegin);
        }
        let Some(trid) = self.txn.as_ref().map(|t| t.trid) else {
            return Err(WireError::Protocol("transaction state missing".into()));
        };
        let result = downstream.execute(&make_sql(trid));
        match result {
            Ok(resp) => {
                if let Some(t) = &mut self.txn {
                    t.wrote = true;
                }
                if implicit {
                    // Tracking rows and COMMIT form one atomic unit (§3.3):
                    // any failure before the COMMIT succeeds aborts the
                    // whole transaction, on both sides.
                    let Some(t) = self.txn.take() else {
                        return Err(WireError::Protocol("transaction state missing".into()));
                    };
                    // As in the explicit COMMIT arm: a panic out of a
                    // failpoint or the engine commit would skip the
                    // retirement below, so the guard covers the unwind.
                    let mut guard = RetireOnUnwind::arm(
                        Arc::clone(&self.deps),
                        self.tel().cloned(),
                        t.trid,
                        self.session,
                    );
                    let finished = if self.should_record(&t) {
                        self.write_tracking_rows(&t, downstream)
                    } else {
                        Ok(())
                    }
                    .and_then(|()| self.fault(failpoints::PROXY_BEFORE_COMMIT))
                    .and_then(|()| downstream.execute("COMMIT").map(|_| ()));
                    guard.defuse();
                    if let Err(e) = finished {
                        self.deps.abort(t.trid, self.tel());
                        self.trace(t.trid, EventKind::Abort);
                        self.abort_txn(downstream);
                        return Err(e);
                    }
                    self.deps.commit(t.trid, t.deps.len(), self.tel());
                    self.trace(t.trid, EventKind::Commit);
                }
                Ok(resp)
            }
            Err(e) => {
                if matches!(
                    &e,
                    WireError::Db(EngineError::Deadlock) | WireError::ConnectionDropped
                ) {
                    // Engine already rolled the victim back (deadlock), or
                    // the server did when the connection died.
                    self.clear_txn();
                } else if implicit {
                    let _ = downstream.execute("ROLLBACK");
                    self.clear_txn();
                }
                Err(e)
            }
        }
    }

    /// Builds the cache entry replaying what the cold path does for this
    /// statement shape. Returns `None` for shapes that must stay cold
    /// (template construction failed, or a statement class the scanner
    /// should not have admitted).
    fn build_entry(&self, sql: &str, scan: &StatementScan, cold: &Statement) -> Option<CacheEntry> {
        // Mirror the cold dispatch: tracking-table statements first.
        if let Some(first) = cold.referenced_tables().first() {
            if is_tracking_table(first) {
                return Some(CacheEntry::PassthroughRaw);
            }
        }
        match cold {
            Statement::Select(_) => {
                if !self.config.track_reads {
                    return Some(CacheEntry::PassthroughStrip);
                }
                let Statement::Select(sel) = parse_template(sql, scan)? else {
                    return None;
                };
                match rewrite_select(&sel, self.config.granularity) {
                    crate::rewrite::SelectOutcome::Rewritten { select, plan } => {
                        let stmt = Statement::Select(select);
                        let order = collect_params(&stmt);
                        let tmpl = SqlTemplate::new(stmt.to_string(), &order)?;
                        Some(CacheEntry::Select { tmpl, plan })
                    }
                    crate::rewrite::SelectOutcome::Passthrough(_) => {
                        Some(CacheEntry::PassthroughStrip)
                    }
                }
            }
            Statement::Insert(_) => {
                let Statement::Insert(ins) = parse_template(sql, scan)? else {
                    return None;
                };
                let rewritten = rewrite_insert_with(
                    &ins,
                    Expr::Param(TRID_PARAM),
                    self.config.flavor,
                    self.config.granularity,
                );
                let stmt = Statement::Insert(rewritten);
                let order = collect_params(&stmt);
                let tmpl = SqlTemplate::new(stmt.to_string(), &order)?;
                Some(CacheEntry::Write { tmpl })
            }
            Statement::Update(_) => {
                let Statement::Update(upd) = parse_template(sql, scan)? else {
                    return None;
                };
                let rewritten =
                    rewrite_update_with(&upd, Expr::Param(TRID_PARAM), self.config.granularity);
                let stmt = Statement::Update(rewritten);
                let order = collect_params(&stmt);
                let tmpl = SqlTemplate::new(stmt.to_string(), &order)?;
                Some(CacheEntry::Write { tmpl })
            }
            Statement::Delete(_) => Some(CacheEntry::WriteRaw),
            _ => None,
        }
    }

    /// Replays a cached statement shape for the incoming `sql`.
    fn execute_cached(
        &mut self,
        entry: &CacheEntry,
        sql: &str,
        scan: &StatementScan,
        downstream: &mut dyn Connection,
    ) -> Result<Response, WireError> {
        match entry {
            CacheEntry::PassthroughRaw => downstream.execute(sql),
            CacheEntry::PassthroughStrip => {
                let resp = downstream.execute(sql)?;
                Ok(self.strip_only(resp))
            }
            CacheEntry::Select { tmpl, plan } => {
                let rewritten = tmpl.splice(sql, &scan.spans, 0);
                let resp = downstream.execute(&rewritten)?;
                self.harvest_and_strip(resp, plan)
            }
            CacheEntry::Write { tmpl } => {
                self.execute_write(downstream, |trid| tmpl.splice(sql, &scan.spans, trid))
            }
            CacheEntry::WriteRaw => self.execute_write(downstream, |_| sql.to_string()),
        }
    }

    /// The cold interception path: full parse, rewrite and print.
    fn execute_cold(
        &mut self,
        stmt: &Statement,
        sql: &str,
        downstream: &mut dyn Connection,
    ) -> Result<Response, WireError> {
        // Statements aimed at the tracking tables themselves pass through
        // untouched (they have no trid column).
        if let Some(first) = stmt.referenced_tables().first() {
            if is_tracking_table(first) {
                return downstream.execute(sql);
            }
        }

        match stmt {
            Statement::Begin => {
                if self.txn.as_ref().is_some_and(|t| t.explicit) {
                    return Err(WireError::Db(EngineError::InvalidTransactionState(
                        "BEGIN inside an open transaction".into(),
                    )));
                }
                let resp = downstream.execute("BEGIN")?;
                let trid = self.alloc_trid();
                let annotation = self.next_annotation.take();
                self.txn = Some(TxnTrack::new(trid, true, annotation));
                self.deps.begin(trid, self.tel());
                self.trace(trid, EventKind::TxnBegin);
                Ok(resp)
            }
            Statement::Commit => {
                let Some(t) = self.txn.take() else {
                    return downstream.execute(sql); // let the DBMS complain
                };
                // §3.3: the dependency record is atomic with the
                // transaction — if it cannot be written, nothing commits.
                // The engine's transaction is still open at that point, so
                // it must be rolled back; returning the error with the
                // proxy state cleared but the engine transaction open would
                // leave the two permanently diverged.
                let mut guard = RetireOnUnwind::arm(
                    Arc::clone(&self.deps),
                    self.tel().cloned(),
                    t.trid,
                    self.session,
                );
                let recorded = if self.should_record(&t) {
                    self.write_tracking_rows(&t, downstream)
                } else {
                    Ok(())
                }
                .and_then(|()| self.fault(failpoints::PROXY_BEFORE_COMMIT));
                if let Err(e) = recorded {
                    guard.defuse();
                    self.deps.abort(t.trid, self.tel());
                    self.trace(t.trid, EventKind::Abort);
                    self.abort_txn(downstream);
                    return Err(e);
                }
                match downstream.execute("COMMIT") {
                    Ok(resp) => {
                        guard.defuse();
                        self.deps.commit(t.trid, t.deps.len(), self.tel());
                        self.trace(t.trid, EventKind::Commit);
                        Ok(resp)
                    }
                    Err(e) => {
                        // A COMMIT that fails did not commit; make sure the
                        // engine side is closed too.
                        guard.defuse();
                        self.deps.abort(t.trid, self.tel());
                        self.trace(t.trid, EventKind::Abort);
                        self.abort_txn(downstream);
                        Err(e)
                    }
                }
            }
            Statement::Rollback => {
                self.clear_txn();
                downstream.execute(sql)
            }
            Statement::CreateTable(ct) => {
                let rewritten =
                    rewrite_create_table(ct, self.config.flavor, self.config.granularity);
                downstream.execute(&rewritten.to_string())
            }
            Statement::DropTable(_) => downstream.execute(sql),
            Statement::Select(sel) => {
                if !self.config.track_reads {
                    let resp = downstream.execute(sql)?;
                    return Ok(self.strip_only(resp));
                }
                match rewrite_select(sel, self.config.granularity) {
                    crate::rewrite::SelectOutcome::Rewritten { select, plan } => {
                        let resp = downstream.execute(&select.to_string())?;
                        self.harvest_and_strip(resp, &plan)
                    }
                    // The skip reason is already accounted for by the
                    // statically computed verdict (enforcement layer); here
                    // the statement is simply forwarded.
                    crate::rewrite::SelectOutcome::Passthrough(_) => {
                        let resp = downstream.execute(sql)?;
                        Ok(self.strip_only(resp))
                    }
                }
            }
            Statement::Insert(ins) => {
                let flavor = self.config.flavor;
                let granularity = self.config.granularity;
                self.execute_write(downstream, |trid| {
                    rewrite_insert(ins, trid, flavor, granularity).to_string()
                })
            }
            Statement::Update(upd) => {
                let granularity = self.config.granularity;
                self.execute_write(downstream, |trid| {
                    rewrite_update(upd, trid, granularity).to_string()
                })
            }
            // DELETEs pass through unmodified; their dependencies are
            // reconstructed from the log at repair time (§3.2).
            Statement::Delete(_) => self.execute_write(downstream, |_| sql.to_string()),
        }
    }
}

/// A connection dropped with a transaction still open must retire that
/// transaction from the factory-wide dependency ledger — the engine side
/// already rolls its session back on drop, and a ledger entry with no
/// surviving connection could never be retired by anyone else (the
/// `proxy.trans_dep.inflight` gauge would report a phantom transaction
/// forever).
impl Drop for Tracker {
    fn drop(&mut self) {
        self.clear_txn();
    }
}

impl Interceptor for Tracker {
    fn intercept(
        &mut self,
        sql: &str,
        downstream: &mut dyn Connection,
    ) -> Result<Response, WireError> {
        // Out-of-band annotation pseudo-command (proxy extension): names
        // the current (or next) transaction for the `annot` table. `get`
        // rather than byte slicing: position 9 of a multi-byte statement
        // need not be a char boundary.
        let trimmed = sql.trim();
        if trimmed
            .get(..9)
            .is_some_and(|p| p.eq_ignore_ascii_case("ANNOTATE "))
        {
            let name = trimmed[9..].trim().to_string();
            match &mut self.txn {
                Some(t) => t.annotation = Some(name),
                None => self.next_annotation = Some(name),
            }
            return Ok(Response::TxnControl);
        }

        let result = self.intercept_statement(sql, downstream);
        if matches!(result, Err(WireError::ConnectionDropped)) {
            // The server rolls an open transaction back when its peer
            // disappears; mirror that so the proxy never believes in a
            // transaction the engine no longer has.
            self.clear_txn();
        }
        result
    }

    fn fold_metrics(&self, snap: &mut MetricsSnapshot) {
        self.cache.fold_metrics(snap);
        self.stats.fold_metrics(snap);
        self.deps.fold_metrics(snap);
        self.runtime.fence().fold_metrics(snap);
    }
}

impl Tracker {
    /// Presents `sql` to the containment fence when one is up. Statements
    /// aimed at the proxy's own tracking tables are never fenced (fence
    /// membership is user tables only), and a statement the proxy cannot
    /// parse falls through — the regular path rejects it with a parse
    /// error anyway.
    fn check_fence(&self, sql: &str) -> Result<(), WireError> {
        let Ok(stmt) = resildb_sql::parse_statement(sql) else {
            return Ok(());
        };
        match self
            .runtime
            .fence()
            .admit(&stmt, self.config.containment.action())
        {
            FenceDecision::Pass => Ok(()),
            FenceDecision::Reject => {
                let table = stmt
                    .referenced_tables()
                    .first()
                    .map_or_else(String::new, |t| format!(" on {t}"));
                Err(WireError::Protocol(format!(
                    "statement refused by containment fence{table}: data quarantined during live repair"
                )))
            }
        }
    }

    fn intercept_statement(
        &mut self,
        sql: &str,
        downstream: &mut dyn Connection,
    ) -> Result<Response, WireError> {
        self.fault(failpoints::PROXY_BEFORE_REWRITE)?;

        // Containment fast path: one relaxed load while no repair is in
        // flight; the full parse-and-check only runs under a raised fence.
        if self.config.containment.is_enabled() && self.runtime.fence().is_active() {
            self.check_fence(sql)?;
        }

        // Template fast path: statements whose shape is already cached are
        // replayed with a fingerprint lookup plus literal splice instead of
        // the full lex/parse/rewrite/print pipeline.
        if self.cache.enabled() {
            if let Some(scan) = scan_statement(sql) {
                let hit = {
                    let _span = self.tel_span(span_names::PROXY_CACHE_LOOKUP);
                    self.cache.lookup(scan.fingerprint, scan.spans.len())
                };
                if let Some(shape) = hit {
                    self.charge_rewrite_cached();
                    self.trace_rewrite(true, shape.verdict.as_ref());
                    // The verdict was computed once on the cold path; on
                    // hits enforcement costs one enum inspection.
                    if let Some(v) = &shape.verdict {
                        self.enforce(v)?;
                    }
                    return self.execute_cached(&shape.entry, sql, &scan, downstream);
                }
                let rewrite_span = self.tel_span(span_names::PROXY_REWRITE);
                let stmt = resildb_sql::parse_statement(sql).map_err(|e| {
                    WireError::Protocol(format!("proxy cannot parse statement: {e}"))
                })?;
                self.charge_rewrite();
                let verdict = self.classify_for_enforcement(&stmt);
                if let Some(entry) = self.build_entry(sql, &scan, &stmt) {
                    self.cache.insert(
                        scan.fingerprint,
                        CachedShape {
                            entry,
                            verdict: verdict.clone(),
                        },
                    );
                }
                drop(rewrite_span);
                self.trace_rewrite(false, verdict.as_ref());
                if let Some(v) = &verdict {
                    self.enforce(v)?;
                }
                return self.execute_cold(&stmt, sql, downstream);
            }
        }

        let rewrite_span = self.tel_span(span_names::PROXY_REWRITE);
        let stmt = resildb_sql::parse_statement(sql)
            .map_err(|e| WireError::Protocol(format!("proxy cannot parse statement: {e}")))?;
        self.charge_rewrite();
        let verdict = self.classify_for_enforcement(&stmt);
        drop(rewrite_span);
        self.trace_rewrite(false, verdict.as_ref());
        if let Some(v) = verdict {
            self.enforce(&v)?;
        }
        self.execute_cold(&stmt, sql, downstream)
    }
}
