//! Shared statement-template rewrite cache.
//!
//! The proxy's steady-state workload is a small set of statement *shapes*
//! executed with varying literals (TPC-C has a few dozen). Cold, every
//! occurrence pays lex + parse + clone-rewrite + print. The cache keys on
//! the literal-masked fingerprint from [`resildb_sql::scan_statement`] and
//! stores the finished rewrite as a [`resildb_sql::SqlTemplate`]; replaying
//! a hit costs a hash lookup plus one text splice.
//!
//! One cache is shared by every connection of a [`crate::TrackingProxy`]
//! factory (the proxy process of the paper), so concurrent clients warm it
//! for each other. Entries are immutable behind `Arc`, and the map itself
//! sits behind a mutex held only for the lookup/insert instant.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use resildb_analyze::Verdict;
use resildb_sim::LruMap;
use resildb_sql::SqlTemplate;

use crate::rewrite::SelectRewrite;

/// How a cached statement shape is replayed.
///
/// The variants mirror the branches of the cold interception path exactly;
/// a hit must behave byte-identically to what the cold path would have
/// done for the same SQL.
#[derive(Debug)]
pub(crate) enum CacheEntry {
    /// Statement on a tracking table: forwarded untouched, no transaction
    /// bookkeeping.
    PassthroughRaw,
    /// SELECT that is not rewritten (aggregates, DISTINCT, no FROM, or
    /// read tracking disabled): forwarded raw, tracking columns stripped
    /// from the result.
    PassthroughStrip,
    /// Rewritten SELECT: splice literals into the template, execute, then
    /// harvest dependencies per the cached plan.
    Select {
        /// Printed rewrite with literal splice slots.
        tmpl: SqlTemplate,
        /// Harvest plan (identical to what the cold rewrite computes —
        /// it depends only on the statement shape, never on literals).
        plan: SelectRewrite,
    },
    /// Rewritten INSERT/UPDATE: splice literals and the current trid,
    /// execute under write-transaction bookkeeping.
    Write {
        /// Printed rewrite with literal and trid splice slots.
        tmpl: SqlTemplate,
    },
    /// DELETE: forwarded raw, but under write-transaction bookkeeping.
    WriteRaw,
}

impl CacheEntry {
    /// Whether this entry may be replayed for a statement with
    /// `literal_spans` masked literals. Template-backed entries demand an
    /// exact slot match — the guard against fingerprint collisions and
    /// scanner drift; raw entries execute the incoming text and need none.
    fn admits(&self, literal_spans: usize) -> bool {
        match self {
            CacheEntry::Select { tmpl, .. } | CacheEntry::Write { tmpl } => {
                tmpl.literal_slots() == literal_spans
            }
            _ => true,
        }
    }
}

/// A cached statement shape: the replay recipe plus the static analyzer's
/// verdict for the shape, computed once on the cold path so enforcement
/// and statistics cost one enum inspection on hits.
#[derive(Debug)]
pub(crate) struct CachedShape {
    /// How to replay the shape.
    pub(crate) entry: CacheEntry,
    /// Trackability verdict; `None` for the proxy's own tracking-table
    /// statements, which are exempt from classification and enforcement.
    pub(crate) verdict: Option<Verdict>,
}

/// Point-in-time counters of a [`RewriteCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RewriteCacheStats {
    /// Lookups that replayed a cached template.
    pub hits: u64,
    /// Lookups that fell through to the cold rewrite path.
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Statement shapes currently cached.
    pub entries: usize,
}

/// Shards of a full-size rewrite cache. Small caches (capacity below
/// [`SHARDING_THRESHOLD`]) stay single-sharded so their LRU eviction order
/// is exact — sharding splits the capacity, which a 4-entry cache cannot
/// afford, while the default 256-shape cache loses nothing.
const REWRITE_CACHE_SHARDS: usize = 8;

/// Minimum total capacity before the cache spreads over
/// [`REWRITE_CACHE_SHARDS`] shards.
const SHARDING_THRESHOLD: usize = 64;

/// Concurrency-safe statement-shape → rewrite-template cache shared by all
/// connections of one proxy factory. Sharded by fingerprint hash so cache
/// hits from concurrent sessions never serialize on one lock.
#[derive(Debug)]
pub struct RewriteCache {
    shards: Vec<Mutex<LruMap<u128, Arc<CachedShape>>>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl RewriteCache {
    /// Creates a cache holding up to `capacity` statement shapes
    /// (least-recently-used eviction per shard). Zero capacity disables it.
    pub(crate) fn new(capacity: usize) -> Self {
        let shards = if capacity >= SHARDING_THRESHOLD {
            REWRITE_CACHE_SHARDS
        } else {
            1
        };
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(LruMap::new(capacity.div_ceil(shards))))
                .collect(),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Whether lookups can ever succeed (capacity > 0). Lock-free: sits on
    /// every statement's path.
    pub(crate) fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The shard a fingerprint hashes to.
    fn shard(&self, fingerprint: u128) -> &Mutex<LruMap<u128, Arc<CachedShape>>> {
        let h = (fingerprint as u64) ^ ((fingerprint >> 64) as u64);
        &self.shards[(h as usize) % self.shards.len()]
    }

    /// Fetches the entry for `fingerprint` if present and admissible for a
    /// statement with `literal_spans` masked literals. Counts a hit or a
    /// miss either way.
    pub(crate) fn lookup(
        &self,
        fingerprint: u128,
        literal_spans: usize,
    ) -> Option<Arc<CachedShape>> {
        let hit = {
            let mut map = self.shard(fingerprint).lock();
            map.get(&fingerprint)
                .filter(|e| e.entry.admits(literal_spans))
                .map(Arc::clone)
        };
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Stores `entry` under `fingerprint`, evicting the least recently
    /// used shape of its shard if at capacity.
    pub(crate) fn insert(&self, fingerprint: u128, shape: CachedShape) {
        if self
            .shard(fingerprint)
            .lock()
            .insert(fingerprint, Arc::new(shape))
        {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Current counters.
    pub fn stats(&self) -> RewriteCacheStats {
        RewriteCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().len()).sum(),
        }
    }

    /// Folds the counters into `snap` under the `proxy.rewrite_cache.*`
    /// metric names.
    pub fn fold_metrics(&self, snap: &mut resildb_sim::MetricsSnapshot) {
        let s = self.stats();
        snap.set_counter("proxy.rewrite_cache.hits", s.hits);
        snap.set_counter("proxy.rewrite_cache.misses", s.misses);
        snap.set_counter("proxy.rewrite_cache.evictions", s.evictions);
        snap.set_counter("proxy.rewrite_cache.entries", s.entries as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(entry: CacheEntry) -> CachedShape {
        CachedShape {
            entry,
            verdict: Some(Verdict::Sound),
        }
    }

    #[test]
    fn lookup_counts_hits_and_misses() {
        let cache = RewriteCache::new(4);
        assert!(cache.lookup(1, 0).is_none());
        cache.insert(1, raw(CacheEntry::WriteRaw));
        assert!(cache.lookup(1, 0).is_some());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn slot_mismatch_is_a_miss() {
        let cache = RewriteCache::new(4);
        let tmpl = SqlTemplate::new("SELECT ?".into(), &[0]).unwrap();
        cache.insert(7, raw(CacheEntry::Write { tmpl }));
        assert!(cache.lookup(7, 2).is_none(), "wrong span count must miss");
        assert!(cache.lookup(7, 1).is_some());
    }

    #[test]
    fn eviction_is_counted() {
        let cache = RewriteCache::new(1);
        cache.insert(1, raw(CacheEntry::WriteRaw));
        cache.insert(2, raw(CacheEntry::WriteRaw));
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup(1, 0).is_none());
        assert!(cache.lookup(2, 0).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = RewriteCache::new(0);
        assert!(!cache.enabled());
        cache.insert(1, raw(CacheEntry::WriteRaw));
        assert!(cache.lookup(1, 0).is_none());
    }
}
