//! Sharded in-flight dependency store.
//!
//! One [`DepStore`] is shared by every connection of a tracking-proxy
//! factory (the proxy process of the paper). It is the factory-wide ledger
//! of *in-flight* tracked transactions: `begin` registers a proxy
//! transaction id, `commit` retires it as it writes its dependency record,
//! `abort` retires it without one. The per-transaction dependency *sets*
//! stay connection-local (a transaction runs on exactly one connection);
//! what the store adds is the cross-connection view — how many tracked
//! transactions are open right now, how many dependency records have been
//! written — plus the §3.3 bookkeeping invariant the concurrency stress
//! suite asserts: every committed transaction retires exactly the entry
//! its begin created, exactly once.
//!
//! The ledger is sharded by transaction-id hash so concurrent COMMITs on
//! different connections never serialize on one lock; time spent waiting
//! for a shard is recorded in the `proxy.trans_dep.shard_wait` histogram.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::{Mutex, MutexGuard};
use resildb_sim::telemetry::names as span_names;
use resildb_sim::{MetricsSnapshot, Telemetry};

/// Shards of the in-flight ledger. Transaction ids are sequential, so the
/// modulo spreads consecutive transactions over distinct locks — exactly
/// the ids that commit concurrently.
const DEP_STORE_SHARDS: usize = 16;

/// State kept per in-flight tracked transaction. The per-transaction
/// dependency *sets* stay connection-local; the ledger only needs presence.
#[derive(Debug, Default, Clone, Copy)]
struct InFlight;

/// Factory-wide ledger of in-flight tracked transactions, sharded by
/// transaction-id hash (see module docs).
#[derive(Debug)]
pub struct DepStore {
    shards: Vec<Mutex<HashMap<i64, InFlight>>>,
    /// Dependency records written (one per committed tracked transaction).
    committed: AtomicU64,
    /// Transactions retired without a record.
    aborted: AtomicU64,
    /// Total dependencies harvested by committed transactions.
    harvested: AtomicU64,
}

impl Default for DepStore {
    fn default() -> Self {
        Self {
            shards: (0..DEP_STORE_SHARDS).map(|_| Mutex::default()).collect(),
            committed: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            harvested: AtomicU64::new(0),
        }
    }
}

/// Point-in-time counters of a [`DepStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DepStoreStats {
    /// Tracked transactions currently open across all connections.
    pub inflight: usize,
    /// Committed transactions (each wrote exactly one dependency record).
    pub committed: u64,
    /// Transactions retired without a dependency record.
    pub aborted: u64,
    /// Total dependencies harvested by committed transactions.
    pub harvested: u64,
}

impl DepStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the shard for `trid`, recording the wait in the
    /// `proxy.trans_dep.shard_wait` histogram when telemetry is recording.
    fn shard(
        &self,
        trid: i64,
        telemetry: Option<&Telemetry>,
    ) -> MutexGuard<'_, HashMap<i64, InFlight>> {
        let mutex = &self.shards[(trid.unsigned_abs() as usize) % self.shards.len()];
        match telemetry.filter(|t| t.is_enabled()) {
            None => mutex.lock(),
            Some(t) => {
                let start = Instant::now();
                let guard = mutex.lock();
                t.record_span_ns(
                    span_names::PROXY_TRANS_DEP_SHARD_WAIT,
                    start.elapsed().as_nanos() as u64,
                );
                guard
            }
        }
    }

    /// Registers a tracked transaction as in flight.
    pub fn begin(&self, trid: i64, telemetry: Option<&Telemetry>) {
        self.shard(trid, telemetry).insert(trid, InFlight);
    }

    /// Retires a transaction as it writes its dependency record. Returns
    /// whether the entry existed — `false` means a double commit or a
    /// commit without a begin, which the stress suite treats as a tracking
    /// bug.
    pub fn commit(&self, trid: i64, deps: usize, telemetry: Option<&Telemetry>) -> bool {
        let mut shard = self.shard(trid, telemetry);
        let existed = shard.remove(&trid).is_some();
        drop(shard);
        if existed {
            self.committed.fetch_add(1, Ordering::Relaxed);
            self.harvested.fetch_add(deps as u64, Ordering::Relaxed);
        }
        existed
    }

    /// Retires a transaction without a dependency record.
    pub fn abort(&self, trid: i64, telemetry: Option<&Telemetry>) {
        if self.shard(trid, telemetry).remove(&trid).is_some() {
            self.aborted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Whether any transaction that began *before* the id watermark is
    /// still in flight. Live repair raises its fence, snapshots the trid
    /// allocator as the watermark, and drains on this predicate: once it
    /// returns `false`, every transaction the pre-fence world admitted has
    /// committed or aborted, so the log analysis that follows sees a
    /// complete prefix.
    pub fn any_inflight_below(&self, watermark: i64) -> bool {
        self.shards
            .iter()
            .any(|s| s.lock().keys().any(|&trid| trid < watermark))
    }

    /// Current counters.
    pub fn stats(&self) -> DepStoreStats {
        DepStoreStats {
            inflight: self.shards.iter().map(|s| s.lock().len()).sum(),
            committed: self.committed.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            harvested: self.harvested.load(Ordering::Relaxed),
        }
    }

    /// Folds the counters into `snap` under the `proxy.trans_dep.*`
    /// metric names.
    pub fn fold_metrics(&self, snap: &mut MetricsSnapshot) {
        let s = self.stats();
        snap.set_counter("proxy.trans_dep.committed", s.committed);
        snap.set_counter("proxy.trans_dep.aborted", s.aborted);
        snap.set_counter("proxy.trans_dep.harvested", s.harvested);
        snap.set_gauge("proxy.trans_dep.inflight", s.inflight as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_commit_retires_exactly_once() {
        let store = DepStore::new();
        store.begin(7, None);
        assert_eq!(store.stats().inflight, 1);
        assert!(store.commit(7, 3, None), "first commit retires the entry");
        assert!(!store.commit(7, 3, None), "second commit finds nothing");
        let s = store.stats();
        assert_eq!((s.inflight, s.committed, s.aborted), (0, 1, 0));
        assert_eq!(s.harvested, 3, "only the first commit counts its deps");
    }

    #[test]
    fn abort_leaves_no_record() {
        let store = DepStore::new();
        store.begin(1, None);
        store.abort(1, None);
        let s = store.stats();
        assert_eq!((s.inflight, s.committed, s.aborted), (0, 0, 1));
        // Aborting an unknown transaction is harmless.
        store.abort(99, None);
        assert_eq!(store.stats().aborted, 1);
    }

    #[test]
    fn inflight_watermark_sees_only_older_transactions() {
        let store = DepStore::new();
        store.begin(3, None);
        store.begin(8, None);
        assert!(store.any_inflight_below(4), "txn 3 is below the watermark");
        assert!(!store.any_inflight_below(3), "3 itself is not below 3");
        store.commit(3, 0, None);
        assert!(
            !store.any_inflight_below(4),
            "only txn 8 remains, above the watermark"
        );
        store.abort(8, None);
        assert!(!store.any_inflight_below(i64::MAX));
    }

    #[test]
    fn shard_wait_histogram_records_under_telemetry() {
        let store = DepStore::new();
        let tel = Telemetry::recording();
        store.begin(5, Some(&tel));
        store.commit(5, 0, Some(&tel));
        let snap = tel.snapshot();
        let hist = snap
            .histogram(span_names::PROXY_TRANS_DEP_SHARD_WAIT)
            .expect("shard-wait histogram present");
        assert!(hist.count >= 2, "begin and commit both record a wait");
    }
}
