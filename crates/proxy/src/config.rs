//! Proxy configuration.

use resildb_engine::Flavor;
use resildb_sim::{Micros, Telemetry};

/// Granularity of dependency tracking.
///
/// The paper tracks at **row** granularity and notes (§6) that an
/// attribute-level `tr_id` "is required to minimize false sharing and to
/// support suppression of false dependency", leaving the efficient
/// implementation open. [`TrackingGranularity::Column`] is this
/// implementation's answer: every user column gets a companion
/// `trid__<column>` stamp, reads harvest exactly the stamps of the columns
/// they touch, and update/delete dependencies are reconstructed from the
/// per-column stamps in the pre-update images. The cost is wider rows and
/// log records — measurable with the `granularity` benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrackingGranularity {
    /// One `trid` per row (the paper's design).
    #[default]
    Row,
    /// `trid` per row plus `trid__<col>` per column (§6 extension).
    Column,
}

impl From<TrackingGranularity> for resildb_analyze::Granularity {
    fn from(g: TrackingGranularity) -> Self {
        match g {
            TrackingGranularity::Row => resildb_analyze::Granularity::Row,
            TrackingGranularity::Column => resildb_analyze::Granularity::Column,
        }
    }
}

/// What the proxy does with statements the static analyzer says the
/// tracking layer cannot soundly follow (aggregate/DISTINCT reads,
/// tracking-column writes, unparsable statements).
///
/// The paper treats these as documented limitations and forwards them
/// silently; with the analyzer in the loop the operator can choose the
/// contract instead. `Reject` turns the soundness guarantee from "best
/// effort" into an invariant: every statement the DBMS executes is one
/// whose dependencies the repair capability can see.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EnforcementPolicy {
    /// Forward untracked statements silently (the paper's behaviour).
    #[default]
    Allow,
    /// Forward untracked statements but count them in
    /// [`crate::TrackerStats`], so deployments can audit how much of the
    /// workload escapes tracking.
    Warn,
    /// Refuse untracked statements with a client-visible error before
    /// they reach the DBMS. Degraded statements still pass.
    Reject,
}

/// What the proxy does with a statement that intersects an active
/// containment fence (see [`ContainmentPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FenceAction {
    /// Refuse the statement with a client-visible error immediately. The
    /// client can retry once repair lifts the fence.
    #[default]
    Reject,
    /// Park the session until the fence shrinks past the touched rows or
    /// lifts, then re-check; reject only after the defer budget expires.
    /// Trades client latency for availability.
    Defer,
}

/// Online-containment policy: what the proxy quarantines while a live
/// repair is in progress.
///
/// The paper repairs offline with the database quiesced. With a fence the
/// proxy instead quarantines only the damaged portion — the attacker
/// profile's *static* blast-radius closure at first (whole tables, known
/// before any log analysis), shrinking to the *dynamic* row-level closure
/// once correlation catches up — and keeps serving every transaction that
/// doesn't touch quarantined data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContainmentPolicy {
    /// No fencing: live repair is refused, repair requires quiescing (the
    /// paper's behaviour).
    #[default]
    Off,
    /// Fence the static table-level surface for the whole repair; never
    /// shrink. Simple and sound, but quarantines more than necessary.
    FenceStatic(FenceAction),
    /// Fence the static surface instantly, then shrink to row-level
    /// quarantine as soon as the dependency analysis identifies the
    /// dynamic closure, extending on the fly if re-analysis grows it.
    FenceDynamic(FenceAction),
}

impl ContainmentPolicy {
    /// Whether any fencing is enabled.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, ContainmentPolicy::Off)
    }

    /// Whether the fence may shrink from tables to rows mid-repair.
    pub fn shrinks(&self) -> bool {
        matches!(self, ContainmentPolicy::FenceDynamic(_))
    }

    /// The action applied to fenced statements ([`FenceAction::Reject`]
    /// when containment is off).
    pub fn action(&self) -> FenceAction {
        match self {
            ContainmentPolicy::Off => FenceAction::Reject,
            ContainmentPolicy::FenceStatic(a) | ContainmentPolicy::FenceDynamic(a) => *a,
        }
    }
}

/// Configuration of the tracking proxy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProxyConfig {
    /// Flavor of the protected DBMS — decides whether the proxy must
    /// inject an identity column (the Sybase workaround of paper §4.3).
    pub flavor: Flavor,
    /// Whether SELECT statements are rewritten to harvest read
    /// dependencies. Turning this off degrades the proxy to trid stamping
    /// only (useful for ablation benchmarks).
    pub track_reads: bool,
    /// Whether the dependency record is written to `trans_dep`/`annot` at
    /// commit. Turning this off isolates the commit-time insert cost
    /// (ablation benchmarks).
    pub record_deps_at_commit: bool,
    /// Whether column-level provenance rows are written to
    /// `trans_dep_prov` at commit. Provenance is this implementation's
    /// extension enabling machine-checkable false-dependency rules; the
    /// paper's prototype recorded only `trans_dep`/`annot`, so
    /// paper-faithful overhead measurements turn this off.
    pub record_provenance: bool,
    /// Whether read-only transactions also get a `trans_dep` record.
    /// Off by default: a transaction that wrote nothing cannot pollute the
    /// database, and recording it would add a pure log-force penalty to
    /// every read-only commit (the paper's Figure 4 read-intensive numbers
    /// imply its prototype did not pay one).
    pub record_read_only_deps: bool,
    /// CPU cost of intercepting, parsing and rewriting one statement,
    /// charged to the virtual clock when the proxy is built with a
    /// simulation context.
    pub rewrite_cpu: Micros,
    /// CPU cost of replaying a cached rewrite (fingerprint hash + literal
    /// splice) — charged instead of [`Self::rewrite_cpu`] on a rewrite-
    /// cache hit. The cold/cached ratio here models the measured speedup
    /// of the template path over lex+parse+clone+print.
    pub rewrite_cached_cpu: Micros,
    /// Capacity (in statement shapes) of the shared rewrite cache; `0`
    /// disables caching so every statement takes the cold rewrite path
    /// (ablation benchmarks, `fig4 --no-rewrite-cache`).
    pub rewrite_cache_capacity: usize,
    /// Per-row cost (nanoseconds) of harvesting and stripping trid columns
    /// from a result set.
    pub harvest_per_row_ns: u64,
    /// Row-level (paper) or column-level (§6 extension) tracking.
    pub granularity: TrackingGranularity,
    /// What to do with statements the static analyzer classifies as
    /// untracked (dependencies invisible to the tracking layer).
    pub enforcement: EnforcementPolicy,
    /// Online-containment policy: whether (and how) the proxy fences the
    /// damage closure during a live repair. Distinct from
    /// [`Self::enforcement`], which polices *trackability*; containment
    /// polices *quarantine membership* while repair is in flight.
    pub containment: ContainmentPolicy,
    /// Telemetry domain the proxy's spans and counters record into. When
    /// `None` (the default) the proxy records into the simulation
    /// context's domain, which is disabled unless the embedder enabled it
    /// (the `ResilientDb` facade does).
    pub telemetry: Option<Telemetry>,
}

impl ProxyConfig {
    /// The standard configuration for `flavor` (everything on).
    pub fn new(flavor: Flavor) -> Self {
        Self {
            flavor,
            track_reads: true,
            record_deps_at_commit: true,
            record_provenance: true,
            record_read_only_deps: false,
            rewrite_cpu: Micros::new(50),
            rewrite_cached_cpu: Micros::new(5),
            rewrite_cache_capacity: 256,
            harvest_per_row_ns: 1_000,
            granularity: TrackingGranularity::Row,
            enforcement: EnforcementPolicy::Allow,
            containment: ContainmentPolicy::default(),
            telemetry: None,
        }
    }

    /// A builder starting from the standard configuration for `flavor`.
    ///
    /// ```
    /// use resildb_proxy::{EnforcementPolicy, ProxyConfig};
    /// use resildb_engine::Flavor;
    ///
    /// let config = ProxyConfig::builder(Flavor::Postgres)
    ///     .rewrite_cache_capacity(64)
    ///     .enforcement(EnforcementPolicy::Warn)
    ///     .record_read_only_deps(true)
    ///     .build();
    /// assert_eq!(config.rewrite_cache_capacity, 64);
    /// assert_eq!(config.enforcement, EnforcementPolicy::Warn);
    /// assert!(config.record_read_only_deps);
    /// ```
    pub fn builder(flavor: Flavor) -> ProxyConfigBuilder {
        ProxyConfigBuilder {
            config: Self::new(flavor),
        }
    }

    /// The standard configuration with column-level tracking enabled.
    pub fn column_level(flavor: Flavor) -> Self {
        Self {
            granularity: TrackingGranularity::Column,
            ..Self::new(flavor)
        }
    }

    /// This configuration with the rewrite cache disabled — every
    /// statement pays the full lex+parse+rewrite+print cost.
    pub fn without_rewrite_cache(mut self) -> Self {
        self.rewrite_cache_capacity = 0;
        self
    }

    /// This configuration with `policy` applied to untracked statements.
    pub fn with_enforcement(mut self, policy: EnforcementPolicy) -> Self {
        self.enforcement = policy;
        self
    }

    /// A compact one-line description of the knobs that shape tracking
    /// behaviour — stamped into bench `--json-out` reports so every
    /// `BENCH_*.json` artifact records the configuration that produced it.
    pub fn summary(&self) -> String {
        format!(
            "flavor={} track_reads={} deps_at_commit={} provenance={} ro_deps={} \
             cache_cap={} granularity={} enforcement={} containment={}",
            self.flavor.name(),
            self.track_reads,
            self.record_deps_at_commit,
            self.record_provenance,
            self.record_read_only_deps,
            self.rewrite_cache_capacity,
            match self.granularity {
                TrackingGranularity::Row => "row",
                TrackingGranularity::Column => "column",
            },
            match self.enforcement {
                EnforcementPolicy::Allow => "allow",
                EnforcementPolicy::Warn => "warn",
                EnforcementPolicy::Reject => "reject",
            },
            match self.containment {
                ContainmentPolicy::Off => "off",
                ContainmentPolicy::FenceStatic(FenceAction::Reject) => "static/reject",
                ContainmentPolicy::FenceStatic(FenceAction::Defer) => "static/defer",
                ContainmentPolicy::FenceDynamic(FenceAction::Reject) => "dynamic/reject",
                ContainmentPolicy::FenceDynamic(FenceAction::Defer) => "dynamic/defer",
            },
        )
    }
}

/// Builder for [`ProxyConfig`]; see [`ProxyConfig::builder`].
///
/// Every field has a setter so adding config fields (telemetry recorders,
/// sharding, …) stays non-breaking for builder users.
#[derive(Debug, Clone)]
pub struct ProxyConfigBuilder {
    config: ProxyConfig,
}

impl ProxyConfigBuilder {
    /// Whether SELECTs are rewritten to harvest read dependencies.
    pub fn track_reads(mut self, on: bool) -> Self {
        self.config.track_reads = on;
        self
    }

    /// Whether dependency records are written at commit.
    pub fn record_deps_at_commit(mut self, on: bool) -> Self {
        self.config.record_deps_at_commit = on;
        self
    }

    /// Whether column-level provenance rows are written at commit.
    pub fn record_provenance(mut self, on: bool) -> Self {
        self.config.record_provenance = on;
        self
    }

    /// Whether read-only transactions also get a `trans_dep` record.
    pub fn record_read_only_deps(mut self, on: bool) -> Self {
        self.config.record_read_only_deps = on;
        self
    }

    /// CPU cost of a cold statement rewrite.
    pub fn rewrite_cpu(mut self, cost: Micros) -> Self {
        self.config.rewrite_cpu = cost;
        self
    }

    /// CPU cost of replaying a cached rewrite.
    pub fn rewrite_cached_cpu(mut self, cost: Micros) -> Self {
        self.config.rewrite_cached_cpu = cost;
        self
    }

    /// Rewrite-cache capacity in statement shapes (`0` disables).
    pub fn rewrite_cache_capacity(mut self, capacity: usize) -> Self {
        self.config.rewrite_cache_capacity = capacity;
        self
    }

    /// Per-row cost (ns) of harvesting/stripping trid columns.
    pub fn harvest_per_row_ns(mut self, ns: u64) -> Self {
        self.config.harvest_per_row_ns = ns;
        self
    }

    /// Row-level or column-level tracking.
    pub fn granularity(mut self, granularity: TrackingGranularity) -> Self {
        self.config.granularity = granularity;
        self
    }

    /// Policy for statements the analyzer classifies as untracked.
    pub fn enforcement(mut self, policy: EnforcementPolicy) -> Self {
        self.config.enforcement = policy;
        self
    }

    /// Online-containment policy applied while a live repair is fencing
    /// the damage closure.
    pub fn containment(mut self, policy: ContainmentPolicy) -> Self {
        self.config.containment = policy;
        self
    }

    /// Telemetry domain for the proxy's spans and counters.
    pub fn telemetry(mut self, telemetry: Telemetry) -> Self {
        self.config.telemetry = Some(telemetry);
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> ProxyConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_tracks_everything() {
        let c = ProxyConfig::new(Flavor::Sybase);
        assert!(c.track_reads);
        assert!(c.record_deps_at_commit);
        assert!(!c.record_read_only_deps);
        assert!(c.rewrite_cpu > Micros::ZERO);
        assert_eq!(c.flavor, Flavor::Sybase);
        assert_eq!(c.granularity, TrackingGranularity::Row);
    }

    #[test]
    fn column_level_preset() {
        let c = ProxyConfig::column_level(Flavor::Oracle);
        assert_eq!(c.granularity, TrackingGranularity::Column);
        assert!(c.track_reads);
    }

    #[test]
    fn builder_matches_field_mutation() {
        let built = ProxyConfig::builder(Flavor::Oracle)
            .track_reads(false)
            .rewrite_cache_capacity(8)
            .granularity(TrackingGranularity::Column)
            .enforcement(EnforcementPolicy::Reject)
            .build();
        let mut manual = ProxyConfig::new(Flavor::Oracle);
        manual.track_reads = false;
        manual.rewrite_cache_capacity = 8;
        manual.granularity = TrackingGranularity::Column;
        manual.enforcement = EnforcementPolicy::Reject;
        assert_eq!(built, manual);
    }

    #[test]
    fn containment_defaults_off_and_builder_sets_it() {
        let c = ProxyConfig::new(Flavor::Postgres);
        assert_eq!(c.containment, ContainmentPolicy::Off);
        assert!(!c.containment.is_enabled());
        let c = ProxyConfig::builder(Flavor::Postgres)
            .containment(ContainmentPolicy::FenceDynamic(FenceAction::Defer))
            .build();
        assert!(c.containment.is_enabled());
        assert!(c.containment.shrinks());
        assert_eq!(c.containment.action(), FenceAction::Defer);
        assert!(c.summary().contains("containment=dynamic/defer"));
        assert!(!ContainmentPolicy::FenceStatic(FenceAction::Reject).shrinks());
    }

    #[test]
    fn builder_telemetry_attaches_a_domain() {
        let tel = resildb_sim::Telemetry::recording();
        let c = ProxyConfig::builder(Flavor::Postgres)
            .telemetry(tel.clone())
            .build();
        assert_eq!(c.telemetry, Some(tel));
    }

    #[test]
    fn rewrite_cache_defaults_and_disable() {
        let c = ProxyConfig::new(Flavor::Postgres);
        assert!(c.rewrite_cache_capacity > 0);
        assert!(c.rewrite_cached_cpu < c.rewrite_cpu);
        let off = c.without_rewrite_cache();
        assert_eq!(off.rewrite_cache_capacity, 0);
    }
}
