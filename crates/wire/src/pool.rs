//! Server-side connection pooling (the pooling process of paper Figure 2).

use std::sync::Arc;

use parking_lot::Mutex;

use crate::driver::{Connection, Driver};
use crate::error::WireError;
use crate::message::Response;

/// A bounded pool of connections created from one driver.
///
/// Checked-out connections return to the pool on drop. The pool is
/// intentionally simple: it never validates idle connections (our simulated
/// transports cannot go stale) and fails fast when `max` connections are
/// simultaneously out.
///
/// # Examples
///
/// ```
/// use resildb_engine::{Database, Flavor};
/// use resildb_wire::{Connection, ConnectionPool, LinkProfile, NativeDriver};
///
/// # fn main() -> Result<(), resildb_wire::WireError> {
/// let db = Database::in_memory(Flavor::Oracle);
/// let pool = ConnectionPool::new(NativeDriver::new(db, LinkProfile::local()), 4);
/// let mut conn = pool.get()?;
/// conn.execute("CREATE TABLE t (a INTEGER)")?;
/// drop(conn); // returns to the pool
/// assert_eq!(pool.idle(), 1);
/// # Ok(())
/// # }
/// ```
pub struct ConnectionPool {
    inner: Arc<PoolInner>,
}

struct PoolInner {
    driver: Box<dyn Driver>,
    idle: Mutex<Vec<Box<dyn Connection>>>,
    max: usize,
    out: Mutex<usize>,
}

impl std::fmt::Debug for ConnectionPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConnectionPool")
            .field("max", &self.inner.max)
            .field("idle", &self.idle())
            .finish_non_exhaustive()
    }
}

impl ConnectionPool {
    /// Creates a pool over `driver` with at most `max` live connections.
    pub fn new(driver: impl Driver + 'static, max: usize) -> Self {
        Self {
            inner: Arc::new(PoolInner {
                driver: Box::new(driver),
                idle: Mutex::new(Vec::new()),
                max,
                out: Mutex::new(0),
            }),
        }
    }

    /// Checks a connection out, creating one if none are idle.
    ///
    /// # Errors
    ///
    /// [`WireError::PoolExhausted`] when `max` connections are already out;
    /// driver errors when creating a fresh connection fails.
    pub fn get(&self) -> Result<PooledConnection, WireError> {
        {
            let mut out = self.inner.out.lock();
            if *out >= self.inner.max {
                return Err(WireError::PoolExhausted);
            }
            *out += 1;
        }
        let existing = self.inner.idle.lock().pop();
        let conn = match existing {
            Some(c) => c,
            None => match self.inner.driver.connect() {
                Ok(c) => c,
                Err(e) => {
                    *self.inner.out.lock() -= 1;
                    return Err(e);
                }
            },
        };
        Ok(PooledConnection {
            pool: Arc::clone(&self.inner),
            conn: Some(conn),
        })
    }

    /// Number of idle connections.
    pub fn idle(&self) -> usize {
        self.inner.idle.lock().len()
    }

    /// Number of checked-out connections.
    pub fn in_use(&self) -> usize {
        *self.inner.out.lock()
    }
}

impl Clone for ConnectionPool {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// A pooled connection; returns to its pool on drop.
pub struct PooledConnection {
    pool: Arc<PoolInner>,
    conn: Option<Box<dyn Connection>>,
}

impl std::fmt::Debug for PooledConnection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledConnection").finish_non_exhaustive()
    }
}

impl Connection for PooledConnection {
    fn execute(&mut self, sql: &str) -> Result<Response, WireError> {
        match self.conn.as_mut() {
            Some(conn) => conn.execute(sql),
            None => Err(WireError::Protocol(
                "pooled connection already returned".into(),
            )),
        }
    }

    fn metrics(&self) -> resildb_sim::MetricsSnapshot {
        self.conn.as_ref().map(|c| c.metrics()).unwrap_or_default()
    }
}

impl Drop for PooledConnection {
    fn drop(&mut self) {
        if let Some(conn) = self.conn.take() {
            self.pool.idle.lock().push(conn);
        }
        *self.pool.out.lock() -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{LinkProfile, NativeDriver};
    use resildb_engine::{Database, Flavor};

    fn pool(max: usize) -> ConnectionPool {
        let db = Database::in_memory(Flavor::Postgres);
        ConnectionPool::new(NativeDriver::new(db, LinkProfile::local()), max)
    }

    #[test]
    fn connections_are_reused() {
        let p = pool(2);
        let c1 = p.get().unwrap();
        drop(c1);
        assert_eq!(p.idle(), 1);
        let _c2 = p.get().unwrap();
        assert_eq!(p.idle(), 0, "idle connection was reused, not recreated");
        assert_eq!(p.in_use(), 1);
    }

    #[test]
    fn pool_exhaustion_fails_fast() {
        let p = pool(1);
        let _held = p.get().unwrap();
        assert!(matches!(p.get(), Err(WireError::PoolExhausted)));
    }

    #[test]
    fn checked_out_connection_executes() {
        let p = pool(1);
        let mut c = p.get().unwrap();
        c.execute("CREATE TABLE t (a INTEGER)").unwrap();
        c.execute("INSERT INTO t (a) VALUES (1)").unwrap();
        let r = c.execute("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows().unwrap().rows[0][0], resildb_engine::Value::Int(1));
    }

    #[test]
    fn clone_shares_the_pool() {
        let p = pool(1);
        let p2 = p.clone();
        let _held = p.get().unwrap();
        assert!(matches!(p2.get(), Err(WireError::PoolExhausted)));
    }
}
