//! JDBC-like driver abstraction and the native driver.

use resildb_engine::{Database, PreparedStatement, Session};
use resildb_sim::{failpoints, InjectedFault, MetricsSnapshot, Micros};
use resildb_sql::Literal;

use crate::error::WireError;
use crate::message::{response_wire_bytes, Response};

/// Latency profile of one network link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkProfile {
    /// Fixed round-trip latency.
    pub rtt: Micros,
    /// Transfer cost per byte, in nanoseconds.
    pub per_byte_ns: u64,
}

impl LinkProfile {
    /// A 100 Mbps-LAN-like link (the paper's networked configuration).
    pub fn lan() -> Self {
        Self {
            rtt: Micros::new(200),
            per_byte_ns: 80,
        }
    }

    /// Same-machine IPC (the paper's local configuration, and the
    /// server-proxy→DBMS leg of the dual-proxy architecture).
    pub fn local() -> Self {
        Self {
            rtt: Micros::new(15),
            per_byte_ns: 2,
        }
    }
}

/// Server-side handle to a statement prepared on one connection (the JDBC
/// `PreparedStatement` analogue). Handles are connection-scoped: a handle
/// from one connection is meaningless on another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatementHandle(u64);

impl StatementHandle {
    /// Wraps a raw slot index as a handle (for connection adapters that
    /// manage their own statement storage, e.g. the unified `Session`
    /// trait over a raw engine session).
    pub fn from_raw(raw: u64) -> Self {
        StatementHandle(raw)
    }

    /// The raw slot index inside this handle.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// An open connection executing SQL text.
pub trait Connection: Send {
    /// Executes one statement.
    ///
    /// # Errors
    ///
    /// [`WireError::Db`] for DBMS errors (deadlock victims have been rolled
    /// back), [`WireError::Protocol`] for transport problems.
    fn execute(&mut self, sql: &str) -> Result<Response, WireError>;

    /// Prepares `sql` (which may contain `?` placeholders) server-side,
    /// paying the parse cost once, and returns a handle for repeated
    /// execution.
    ///
    /// The default refuses: a connection type must opt in. In particular
    /// the dependency-tracking proxy connections deliberately do **not** —
    /// a client-prepared statement would bypass the proxy's SQL rewriting
    /// and with it the trid stamping the repair capability rests on.
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] when unsupported; [`WireError::Db`] for
    /// parse errors.
    fn prepare(&mut self, sql: &str) -> Result<StatementHandle, WireError> {
        let _ = sql;
        Err(WireError::Protocol(
            "prepared statements are not supported on this connection".into(),
        ))
    }

    /// Executes a previously prepared statement with `params` bound to its
    /// `?` placeholders in source order.
    ///
    /// # Errors
    ///
    /// [`WireError::Protocol`] when unsupported or the handle is unknown;
    /// [`WireError::Db`] for binding and execution errors.
    fn execute_prepared(
        &mut self,
        handle: StatementHandle,
        params: &[Literal],
    ) -> Result<Response, WireError> {
        let _ = (handle, params);
        Err(WireError::Protocol(
            "prepared statements are not supported on this connection".into(),
        ))
    }

    /// A metrics snapshot for the database behind this connection,
    /// including any layer-specific counters the connection type folds in
    /// (e.g. the tracking proxy's rewrite-cache and enforcement stats).
    ///
    /// The default returns an empty snapshot: a connection type opts in.
    fn metrics(&self) -> MetricsSnapshot {
        MetricsSnapshot::default()
    }
}

/// A connection factory (the JDBC `Driver` analogue).
pub trait Driver: Send + Sync {
    /// Opens a fresh connection.
    ///
    /// # Errors
    ///
    /// Transport or resource errors.
    fn connect(&self) -> Result<Box<dyn Connection>, WireError>;
}

/// The "real JDBC driver": speaks the DBMS's proprietary protocol directly
/// to the server, charging one link round trip per statement.
#[derive(Debug, Clone)]
pub struct NativeDriver {
    db: Database,
    link: LinkProfile,
}

impl NativeDriver {
    /// Creates a driver for `db` over `link`.
    pub fn new(db: Database, link: LinkProfile) -> Self {
        Self { db, link }
    }

    /// The database this driver connects to.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The link profile in use.
    pub fn link(&self) -> LinkProfile {
        self.link
    }
}

impl Driver for NativeDriver {
    fn connect(&self) -> Result<Box<dyn Connection>, WireError> {
        Ok(Box::new(NativeConnection {
            session: self.db.session(),
            db: self.db.clone(),
            link: self.link,
            prepared: Vec::new(),
            dropped: false,
        }))
    }
}

struct NativeConnection {
    session: Session,
    db: Database,
    link: LinkProfile,
    prepared: Vec<PreparedStatement>,
    /// Set when a `wire.conn_drop` fault severed this connection; every
    /// later call fails fast with [`WireError::ConnectionDropped`].
    dropped: bool,
}

impl NativeConnection {
    /// Evaluates the wire-level failpoints for one carried statement. A
    /// drop rolls the server-side transaction back (the server notices the
    /// lost peer) and poisons the connection.
    fn check_faults(&mut self) -> Result<(), WireError> {
        if self.dropped {
            return Err(WireError::ConnectionDropped);
        }
        let sim = self.db.sim().clone();
        sim.fault_check(failpoints::WIRE_LATENCY); // Delay applied in place
        match sim.fault_check(failpoints::WIRE_CONN_DROP) {
            None => Ok(()),
            Some(InjectedFault::Disconnect) | Some(InjectedFault::Error) => {
                self.dropped = true;
                if self.session.in_transaction() {
                    let _ = self.session.execute_sql("ROLLBACK");
                }
                Err(WireError::ConnectionDropped)
            }
            Some(InjectedFault::Delay(_)) => unreachable!("fault_check consumes delays"),
        }
    }
}

impl Connection for NativeConnection {
    fn execute(&mut self, sql: &str) -> Result<Response, WireError> {
        self.check_faults()?;
        let outcome = self.session.execute_sql(sql)?;
        let response = Response::from(outcome);
        let bytes = sql.len() + response_wire_bytes(&response);
        self.db
            .sim()
            .charge_link(self.link.rtt, self.link.per_byte_ns, bytes);
        // In wall-clock mode, sleep off the virtual time this statement
        // accrued — outside every engine latch, so concurrent sessions
        // overlap their waits.
        self.db.sim().pay_pending_wait();
        Ok(response)
    }

    fn prepare(&mut self, sql: &str) -> Result<StatementHandle, WireError> {
        self.check_faults()?;
        let prepared = self.session.prepare(sql)?;
        self.prepared.push(prepared);
        // One round trip carrying the statement text; the reply is a
        // fixed-size handle acknowledgement.
        self.db
            .sim()
            .charge_link(self.link.rtt, self.link.per_byte_ns, sql.len() + 8);
        self.db.sim().pay_pending_wait();
        Ok(StatementHandle((self.prepared.len() - 1) as u64))
    }

    fn execute_prepared(
        &mut self,
        handle: StatementHandle,
        params: &[Literal],
    ) -> Result<Response, WireError> {
        self.check_faults()?;
        let prepared = self
            .prepared
            .get(handle.0 as usize)
            .cloned()
            .ok_or_else(|| WireError::Protocol(format!("unknown statement handle {}", handle.0)))?;
        let outcome = self.session.execute_prepared(&prepared, params)?;
        let response = Response::from(outcome);
        // The request carries only the handle and the bound values — the
        // wire-cost advantage of prepared execution over statement text.
        let request_bytes: usize = 8 + params
            .iter()
            .map(|p| p.to_string().len() + 1)
            .sum::<usize>();
        let bytes = request_bytes + response_wire_bytes(&response);
        self.db
            .sim()
            .charge_link(self.link.rtt, self.link.per_byte_ns, bytes);
        self.db.sim().pay_pending_wait();
        Ok(response)
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.db.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resildb_engine::Flavor;
    use resildb_sim::{CostModel, SimContext};

    #[test]
    fn native_driver_executes_and_charges() {
        let sim = SimContext::new(CostModel::free(), 64);
        let db = Database::new("t", Flavor::Postgres, sim);
        let driver = NativeDriver::new(db.clone(), LinkProfile::lan());
        let mut conn = driver.connect().unwrap();
        conn.execute("CREATE TABLE t (a INTEGER)").unwrap();
        conn.execute("INSERT INTO t (a) VALUES (1)").unwrap();
        let resp = conn.execute("SELECT a FROM t").unwrap();
        assert_eq!(resp.rows().unwrap().rows.len(), 1);
        assert_eq!(db.sim().stats().round_trips.get(), 3);
        assert!(db.sim().clock().now() >= Micros::new(600), "3 RTTs charged");
    }

    #[test]
    fn db_errors_surface_as_wire_errors() {
        let db = Database::in_memory(Flavor::Postgres);
        let driver = NativeDriver::new(db, LinkProfile::local());
        let mut conn = driver.connect().unwrap();
        let err = conn.execute("SELECT * FROM missing").unwrap_err();
        assert!(matches!(err, WireError::Db(_)));
    }

    #[test]
    fn prepared_statements_execute_with_bindings() {
        let db = Database::in_memory(Flavor::Postgres);
        let driver = NativeDriver::new(db, LinkProfile::local());
        let mut conn = driver.connect().unwrap();
        conn.execute("CREATE TABLE t (a INTEGER, b TEXT)").unwrap();
        let ins = conn.prepare("INSERT INTO t (a, b) VALUES (?, ?)").unwrap();
        conn.execute_prepared(ins, &[Literal::Int(1), Literal::Str("x".into())])
            .unwrap();
        conn.execute_prepared(ins, &[Literal::Int(2), Literal::Str("y".into())])
            .unwrap();
        let sel = conn.prepare("SELECT b FROM t WHERE a = ?").unwrap();
        let resp = conn.execute_prepared(sel, &[Literal::Int(2)]).unwrap();
        assert_eq!(
            resp.rows().unwrap().rows,
            vec![vec![resildb_engine::Value::Str("y".into())]]
        );
    }

    #[test]
    fn prepared_charges_fewer_wire_bytes_than_text() {
        let sim = SimContext::new(CostModel::free(), 64);
        let db = Database::new("t", Flavor::Postgres, sim);
        let driver = NativeDriver::new(db.clone(), LinkProfile::lan());
        let mut conn = driver.connect().unwrap();
        conn.execute("CREATE TABLE t (a INTEGER, b TEXT)").unwrap();
        let handle = conn.prepare("INSERT INTO t (a, b) VALUES (?, ?)").unwrap();
        let before = db.sim().stats().network_bytes.get();
        conn.execute_prepared(handle, &[Literal::Int(1), Literal::Str("abc".into())])
            .unwrap();
        let prepared_bytes = db.sim().stats().network_bytes.get() - before;
        let before = db.sim().stats().network_bytes.get();
        conn.execute("INSERT INTO t (a, b) VALUES (2, 'abc')")
            .unwrap();
        let text_bytes = db.sim().stats().network_bytes.get() - before;
        assert!(
            prepared_bytes < text_bytes,
            "prepared request ({prepared_bytes}B) must beat statement text ({text_bytes}B)"
        );
    }

    #[test]
    fn bad_handles_and_arity_are_errors() {
        let db = Database::in_memory(Flavor::Postgres);
        let driver = NativeDriver::new(db, LinkProfile::local());
        let mut conn = driver.connect().unwrap();
        conn.execute("CREATE TABLE t (a INTEGER)").unwrap();
        assert!(matches!(
            conn.execute_prepared(StatementHandle(99), &[]),
            Err(WireError::Protocol(_))
        ));
        let h = conn.prepare("INSERT INTO t (a) VALUES (?)").unwrap();
        assert!(matches!(
            conn.execute_prepared(h, &[]),
            Err(WireError::Db(_))
        ));
        assert!(matches!(conn.prepare("SELEC ?"), Err(WireError::Db(_))));
    }

    #[test]
    fn connections_are_independent_sessions() {
        let db = Database::in_memory(Flavor::Postgres);
        let driver = NativeDriver::new(db, LinkProfile::local());
        let mut c1 = driver.connect().unwrap();
        let mut c2 = driver.connect().unwrap();
        c1.execute("CREATE TABLE t (a INTEGER)").unwrap();
        c1.execute("BEGIN").unwrap();
        c1.execute("INSERT INTO t (a) VALUES (1)").unwrap();
        // c2 must not be inside c1's transaction.
        assert!(matches!(
            c2.execute("COMMIT").unwrap_err(),
            WireError::Db(_)
        ));
        c1.execute("COMMIT").unwrap();
    }
}
