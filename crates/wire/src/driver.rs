//! JDBC-like driver abstraction and the native driver.

use resildb_engine::{Database, Session};
use resildb_sim::Micros;

use crate::error::WireError;
use crate::message::{response_wire_bytes, Response};

/// Latency profile of one network link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkProfile {
    /// Fixed round-trip latency.
    pub rtt: Micros,
    /// Transfer cost per byte, in nanoseconds.
    pub per_byte_ns: u64,
}

impl LinkProfile {
    /// A 100 Mbps-LAN-like link (the paper's networked configuration).
    pub fn lan() -> Self {
        Self {
            rtt: Micros::new(200),
            per_byte_ns: 80,
        }
    }

    /// Same-machine IPC (the paper's local configuration, and the
    /// server-proxy→DBMS leg of the dual-proxy architecture).
    pub fn local() -> Self {
        Self {
            rtt: Micros::new(15),
            per_byte_ns: 2,
        }
    }
}

/// An open connection executing SQL text.
pub trait Connection: Send {
    /// Executes one statement.
    ///
    /// # Errors
    ///
    /// [`WireError::Db`] for DBMS errors (deadlock victims have been rolled
    /// back), [`WireError::Protocol`] for transport problems.
    fn execute(&mut self, sql: &str) -> Result<Response, WireError>;
}

/// A connection factory (the JDBC `Driver` analogue).
pub trait Driver: Send + Sync {
    /// Opens a fresh connection.
    ///
    /// # Errors
    ///
    /// Transport or resource errors.
    fn connect(&self) -> Result<Box<dyn Connection>, WireError>;
}

/// The "real JDBC driver": speaks the DBMS's proprietary protocol directly
/// to the server, charging one link round trip per statement.
#[derive(Debug, Clone)]
pub struct NativeDriver {
    db: Database,
    link: LinkProfile,
}

impl NativeDriver {
    /// Creates a driver for `db` over `link`.
    pub fn new(db: Database, link: LinkProfile) -> Self {
        Self { db, link }
    }

    /// The database this driver connects to.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The link profile in use.
    pub fn link(&self) -> LinkProfile {
        self.link
    }
}

impl Driver for NativeDriver {
    fn connect(&self) -> Result<Box<dyn Connection>, WireError> {
        Ok(Box::new(NativeConnection {
            session: self.db.session(),
            db: self.db.clone(),
            link: self.link,
        }))
    }
}

struct NativeConnection {
    session: Session,
    db: Database,
    link: LinkProfile,
}

impl Connection for NativeConnection {
    fn execute(&mut self, sql: &str) -> Result<Response, WireError> {
        let outcome = self.session.execute_sql(sql)?;
        let response = Response::from(outcome);
        let bytes = sql.len() + response_wire_bytes(&response);
        self.db.sim().charge_link(self.link.rtt, self.link.per_byte_ns, bytes);
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resildb_engine::Flavor;
    use resildb_sim::{CostModel, SimContext};

    #[test]
    fn native_driver_executes_and_charges() {
        let sim = SimContext::new(CostModel::free(), 64);
        let db = Database::new("t", Flavor::Postgres, sim);
        let driver = NativeDriver::new(db.clone(), LinkProfile::lan());
        let mut conn = driver.connect().unwrap();
        conn.execute("CREATE TABLE t (a INTEGER)").unwrap();
        conn.execute("INSERT INTO t (a) VALUES (1)").unwrap();
        let resp = conn.execute("SELECT a FROM t").unwrap();
        assert_eq!(resp.rows().unwrap().rows.len(), 1);
        assert_eq!(db.sim().stats().round_trips.get(), 3);
        assert!(db.sim().clock().now() >= Micros::new(600), "3 RTTs charged");
    }

    #[test]
    fn db_errors_surface_as_wire_errors() {
        let db = Database::in_memory(Flavor::Postgres);
        let driver = NativeDriver::new(db, LinkProfile::local());
        let mut conn = driver.connect().unwrap();
        let err = conn.execute("SELECT * FROM missing").unwrap_err();
        assert!(matches!(err, WireError::Db(_)));
    }

    #[test]
    fn connections_are_independent_sessions() {
        let db = Database::in_memory(Flavor::Postgres);
        let driver = NativeDriver::new(db, LinkProfile::local());
        let mut c1 = driver.connect().unwrap();
        let mut c2 = driver.connect().unwrap();
        c1.execute("CREATE TABLE t (a INTEGER)").unwrap();
        c1.execute("BEGIN").unwrap();
        c1.execute("INSERT INTO t (a) VALUES (1)").unwrap();
        // c2 must not be inside c1's transaction.
        assert!(matches!(
            c2.execute("COMMIT").unwrap_err(),
            WireError::Db(_)
        ));
        c1.execute("COMMIT").unwrap();
    }
}
