//! Proxy placement architectures (paper Figures 1 and 2).
//!
//! The tracking logic is supplied as an [`Interceptor`]; this module wires
//! it into the connection path in the two deployments the paper describes:
//!
//! * **Single proxy** (Figure 1): the interceptor runs inside the client's
//!   proxy JDBC driver; every statement it issues (original or extra)
//!   crosses the client↔server link.
//! * **Dual proxy** (Figure 2): the client-side proxy only ships the SQL
//!   text over a plain-text proxy protocol; the interceptor runs in the
//!   server-side proxy, whose own connection to the DBMS is a local link —
//!   so the *extra* statements the tracker issues stay on the server
//!   machine. This also closes the bypass attack: clients that skip the
//!   client proxy can be firewalled off from the DBMS port.

use resildb_engine::Database;
use resildb_sim::MetricsSnapshot;

use crate::driver::{Connection, Driver, LinkProfile, NativeDriver};
use crate::error::WireError;
use crate::message::{response_wire_bytes, Response};

/// Statement-interception hook: receives each client statement plus the
/// downstream connection, and produces the response the client sees.
pub trait Interceptor: Send {
    /// Handles one client statement. Implementations may rewrite `sql`,
    /// execute any number of statements on `downstream`, and post-process
    /// results (e.g. strip harvested `trid` columns).
    ///
    /// # Errors
    ///
    /// Propagates downstream errors; may add its own protocol errors.
    fn intercept(
        &mut self,
        sql: &str,
        downstream: &mut dyn Connection,
    ) -> Result<Response, WireError>;

    /// Folds this interceptor's own counters (e.g. rewrite-cache and
    /// enforcement stats) into `snap` when the connection's metrics are
    /// snapshotted. The default folds nothing.
    fn fold_metrics(&self, snap: &mut MetricsSnapshot) {
        let _ = snap;
    }
}

/// Factory producing one [`Interceptor`] per connection (each connection
/// tracks its own open transaction).
pub trait InterceptorFactory: Send + Sync {
    /// Creates the interceptor for a new connection.
    fn make(&self) -> Box<dyn Interceptor>;
}

impl<F> InterceptorFactory for F
where
    F: Fn() -> Box<dyn Interceptor> + Send + Sync,
{
    fn make(&self) -> Box<dyn Interceptor> {
        self()
    }
}

/// A driver wrapping `inner` connections with an interceptor.
pub struct InterceptDriver<D> {
    inner: D,
    factory: Box<dyn InterceptorFactory>,
}

impl<D: std::fmt::Debug> std::fmt::Debug for InterceptDriver<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InterceptDriver")
            .field("inner", &self.inner)
            .finish_non_exhaustive()
    }
}

impl<D: Driver> InterceptDriver<D> {
    /// Wraps `inner` so every connection runs `factory`'s interceptor.
    pub fn new(inner: D, factory: Box<dyn InterceptorFactory>) -> Self {
        Self { inner, factory }
    }
}

impl<D: Driver> Driver for InterceptDriver<D> {
    fn connect(&self) -> Result<Box<dyn Connection>, WireError> {
        Ok(Box::new(InterceptConnection {
            inner: self.inner.connect()?,
            interceptor: self.factory.make(),
        }))
    }
}

struct InterceptConnection {
    inner: Box<dyn Connection>,
    interceptor: Box<dyn Interceptor>,
}

impl Connection for InterceptConnection {
    fn execute(&mut self, sql: &str) -> Result<Response, WireError> {
        self.interceptor.intercept(sql, self.inner.as_mut())
    }

    fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.inner.metrics();
        self.interceptor.fold_metrics(&mut snap);
        snap
    }
}

/// Builds the Figure 1 architecture: a client-side proxy driver whose
/// interceptor talks to the DBMS over the client↔server link, so every
/// statement the tracker issues pays that link's latency.
pub fn single_proxy(
    db: Database,
    client_link: LinkProfile,
    factory: Box<dyn InterceptorFactory>,
) -> InterceptDriver<NativeDriver> {
    InterceptDriver::new(NativeDriver::new(db, client_link), factory)
}

/// Builds the Figure 2 architecture: the client proxy ships SQL text over
/// `client_link` to a server-side proxy, which runs the interceptor against
/// the DBMS over a local link.
pub fn dual_proxy(
    db: Database,
    client_link: LinkProfile,
    factory: Box<dyn InterceptorFactory>,
) -> DualProxyDriver {
    DualProxyDriver {
        db: db.clone(),
        client_link,
        server_side: InterceptDriver::new(NativeDriver::new(db, LinkProfile::local()), factory),
    }
}

/// Driver for the dual-proxy deployment (see [`dual_proxy`]).
pub struct DualProxyDriver {
    db: Database,
    client_link: LinkProfile,
    server_side: InterceptDriver<NativeDriver>,
}

impl std::fmt::Debug for DualProxyDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DualProxyDriver")
            .field("client_link", &self.client_link)
            .finish_non_exhaustive()
    }
}

impl Driver for DualProxyDriver {
    fn connect(&self) -> Result<Box<dyn Connection>, WireError> {
        Ok(Box::new(DualProxyConnection {
            db: self.db.clone(),
            client_link: self.client_link,
            server_conn: self.server_side.connect()?,
        }))
    }
}

struct DualProxyConnection {
    db: Database,
    client_link: LinkProfile,
    server_conn: Box<dyn Connection>,
}

impl Connection for DualProxyConnection {
    fn execute(&mut self, sql: &str) -> Result<Response, WireError> {
        // Client proxy → server proxy: plain-text proxy protocol, one round
        // trip carrying the original SQL and the final response.
        let response = self.server_conn.execute(sql)?;
        let bytes = sql.len() + response_wire_bytes(&response);
        self.db
            .sim()
            .charge_link(self.client_link.rtt, self.client_link.per_byte_ns, bytes);
        // Wall-clock mode: sleep off virtual time accrued on this hop (the
        // inner connection already paid its own share).
        self.db.sim().pay_pending_wait();
        Ok(response)
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.server_conn.metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resildb_engine::Flavor;

    /// An interceptor that upper-cases nothing but counts statements and
    /// issues one extra bookkeeping statement per INSERT.
    struct Counting {
        extra_table_ready: bool,
    }

    impl Interceptor for Counting {
        fn intercept(
            &mut self,
            sql: &str,
            downstream: &mut dyn Connection,
        ) -> Result<Response, WireError> {
            if !self.extra_table_ready
                && sql.trim_start().to_ascii_uppercase().starts_with("INSERT")
            {
                downstream.execute("CREATE TABLE audit (n INTEGER)")?;
                self.extra_table_ready = true;
            }
            let resp = downstream.execute(sql)?;
            if sql.trim_start().to_ascii_uppercase().starts_with("INSERT") {
                downstream.execute("INSERT INTO audit (n) VALUES (1)")?;
            }
            Ok(resp)
        }
    }

    fn factory() -> Box<dyn InterceptorFactory> {
        Box::new(|| {
            Box::new(Counting {
                extra_table_ready: false,
            }) as Box<dyn Interceptor>
        })
    }

    #[test]
    fn single_proxy_intercepts_and_issues_extras() {
        let db = Database::in_memory(Flavor::Postgres);
        let driver = single_proxy(db.clone(), LinkProfile::local(), factory());
        let mut conn = driver.connect().unwrap();
        conn.execute("CREATE TABLE t (a INTEGER)").unwrap();
        conn.execute("INSERT INTO t (a) VALUES (5)").unwrap();
        assert_eq!(db.row_count("audit").unwrap(), 1);
    }

    #[test]
    fn dual_proxy_extra_statements_avoid_client_link() {
        // Same workload on both architectures over an expensive client
        // link: dual proxy must spend less virtual time because the audit
        // statements stay on the local leg.
        let run = |dual: bool| {
            let sim = resildb_sim::SimContext::new(resildb_sim::CostModel::free(), 64);
            let db = Database::new("x", Flavor::Postgres, sim);
            let link = LinkProfile::lan();
            let driver: Box<dyn Driver> = if dual {
                Box::new(dual_proxy(db.clone(), link, factory()))
            } else {
                Box::new(single_proxy(db.clone(), link, factory()))
            };
            let mut conn = driver.connect().unwrap();
            conn.execute("CREATE TABLE t (a INTEGER)").unwrap();
            for i in 0..20 {
                conn.execute(&format!("INSERT INTO t (a) VALUES ({i})"))
                    .unwrap();
            }
            db.sim().clock().now()
        };
        let single_time = run(false);
        let dual_time = run(true);
        assert!(
            dual_time < single_time,
            "dual proxy ({dual_time}) should beat single proxy ({single_time}) \
             when extra statements are frequent"
        );
    }

    #[test]
    fn dual_proxy_still_tracks() {
        let db = Database::in_memory(Flavor::Postgres);
        let driver = dual_proxy(db.clone(), LinkProfile::lan(), factory());
        let mut conn = driver.connect().unwrap();
        conn.execute("CREATE TABLE t (a INTEGER)").unwrap();
        conn.execute("INSERT INTO t (a) VALUES (5)").unwrap();
        conn.execute("INSERT INTO t (a) VALUES (6)").unwrap();
        assert_eq!(db.row_count("audit").unwrap(), 2);
    }

    #[test]
    fn interceptor_errors_propagate() {
        let db = Database::in_memory(Flavor::Postgres);
        let driver = single_proxy(db, LinkProfile::local(), factory());
        let mut conn = driver.connect().unwrap();
        assert!(conn.execute("SELECT * FROM nope").is_err());
    }
}
