//! Wire-layer error type.

use std::error::Error;
use std::fmt;

use resildb_engine::EngineError;

/// Errors crossing the client/server boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The DBMS rejected or failed the statement.
    Db(EngineError),
    /// The proxy or transport itself failed.
    Protocol(String),
    /// The connection pool is exhausted.
    PoolExhausted,
    /// The connection was lost mid-use; any open transaction was rolled
    /// back server-side and the connection cannot be used again.
    ConnectionDropped,
}

impl WireError {
    /// True when retrying the whole transaction may succeed (deadlock
    /// victim).
    pub fn is_retryable(&self) -> bool {
        matches!(self, WireError::Db(EngineError::Deadlock))
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Db(e) => write!(f, "database error: {e}"),
            WireError::Protocol(m) => write!(f, "protocol error: {m}"),
            WireError::PoolExhausted => f.write_str("connection pool exhausted"),
            WireError::ConnectionDropped => f.write_str("connection dropped"),
        }
    }
}

impl Error for WireError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WireError::Db(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for WireError {
    fn from(e: EngineError) -> Self {
        WireError::Db(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlocks_are_retryable() {
        assert!(WireError::Db(EngineError::Deadlock).is_retryable());
        assert!(!WireError::Protocol("x".into()).is_retryable());
        assert!(!WireError::Db(EngineError::UnknownTable("t".into())).is_retryable());
    }

    #[test]
    fn source_chains_to_engine_error() {
        let e = WireError::Db(EngineError::Deadlock);
        assert!(std::error::Error::source(&e).is_some());
    }
}
