//! Wire messages and size accounting.

use resildb_engine::{ExecOutcome, QueryResult, Value};

/// Successful statement outcome as seen by a client.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A query's rows.
    Rows(QueryResult),
    /// DML affected-row count.
    Affected(u64),
    /// DDL completed.
    Ddl,
    /// BEGIN/COMMIT/ROLLBACK completed.
    TxnControl,
}

impl Response {
    /// The rows, if this is a query response.
    pub fn rows(&self) -> Option<&QueryResult> {
        match self {
            Response::Rows(r) => Some(r),
            _ => None,
        }
    }

    /// The affected-row count, if DML.
    pub fn affected(&self) -> Option<u64> {
        match self {
            Response::Affected(n) => Some(*n),
            _ => None,
        }
    }
}

impl From<ExecOutcome> for Response {
    fn from(o: ExecOutcome) -> Self {
        match o {
            ExecOutcome::Rows(r) => Response::Rows(r),
            ExecOutcome::Affected(n) => Response::Affected(n),
            ExecOutcome::Ddl => Response::Ddl,
            ExecOutcome::TxnControl => Response::TxnControl,
        }
    }
}

fn value_wire_bytes(v: &Value) -> usize {
    match v {
        Value::Int(_) | Value::Float(_) => 8,
        Value::Str(s) => 4 + s.len(),
        Value::Bool(_) => 1,
        Value::Null => 1,
    }
}

/// Estimated size of a response on the wire, used to charge network
/// transfer costs. Result sets dominate; scalar responses cost a fixed
/// small header. The proxy's extra `trid` columns therefore widen SELECT
/// responses, which is one of the overhead sources Figure 4 measures.
pub fn response_wire_bytes(resp: &Response) -> usize {
    const HEADER: usize = 16;
    match resp {
        Response::Rows(r) => {
            let names: usize = r.columns.iter().map(|c| 2 + c.len()).sum();
            let data: usize = r
                .rows
                .iter()
                .map(|row| 4 + row.iter().map(value_wire_bytes).sum::<usize>())
                .sum();
            HEADER + names + data
        }
        _ => HEADER,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wider_results_cost_more() {
        let narrow = Response::Rows(QueryResult {
            columns: vec!["a".into()],
            rows: vec![vec![Value::Int(1)]],
        });
        let wide = Response::Rows(QueryResult {
            columns: vec!["a".into(), "trid".into()],
            rows: vec![vec![Value::Int(1), Value::Int(42)]],
        });
        assert!(response_wire_bytes(&wide) > response_wire_bytes(&narrow));
    }

    #[test]
    fn scalar_responses_are_header_sized() {
        assert_eq!(response_wire_bytes(&Response::Affected(5)), 16);
        assert_eq!(response_wire_bytes(&Response::Ddl), 16);
    }

    #[test]
    fn conversion_from_outcome() {
        assert_eq!(Response::from(ExecOutcome::Affected(3)).affected(), Some(3));
        assert!(Response::from(ExecOutcome::TxnControl).rows().is_none());
    }
}
