//! Client/server wire layer: drivers, proxy placements, connection pooling.
//!
//! The paper's tracking mechanism lives in a *JDBC proxy driver* that
//! intercepts SQL text between a client and its DBMS (Figures 1 and 2).
//! This crate reproduces that plumbing:
//!
//! * [`Driver`]/[`Connection`] — the JDBC-like abstraction clients code
//!   against;
//! * [`NativeDriver`] — the "real JDBC driver": talks straight to a
//!   [`resildb_engine::Database`] over a (simulated) link;
//! * [`Interceptor`] + [`InterceptDriver`] — the proxy-placement mechanism:
//!   an interceptor sees every statement and may rewrite it, issue extra
//!   statements, and post-process results (the dependency-tracking logic
//!   itself lives in `resildb-proxy`);
//! * [`single_proxy`]/[`dual_proxy`] — the two deployment architectures of
//!   the paper: client-side single proxy (Figure 1) and client+server
//!   proxy pair with a plain-text proxy protocol (Figure 2);
//! * [`ConnectionPool`] — the server-side connection pooling process of
//!   Figure 2.
//!
//! # Examples
//!
//! ```
//! use resildb_engine::{Database, Flavor};
//! use resildb_wire::{Driver, LinkProfile, NativeDriver, Response};
//!
//! # fn main() -> Result<(), resildb_wire::WireError> {
//! let db = Database::in_memory(Flavor::Postgres);
//! let driver = NativeDriver::new(db, LinkProfile::local());
//! let mut conn = driver.connect()?;
//! conn.execute("CREATE TABLE t (a INTEGER)")?;
//! match conn.execute("INSERT INTO t (a) VALUES (1)")? {
//!     resildb_wire::Response::Affected(n) => assert_eq!(n, 1),
//!     other => panic!("unexpected {other:?}"),
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

mod driver;
mod error;
mod message;
mod pool;
mod proxy;

pub use driver::{Connection, Driver, LinkProfile, NativeDriver, StatementHandle};
pub use error::WireError;
pub use message::{response_wire_bytes, Response};
pub use pool::{ConnectionPool, PooledConnection};
pub use proxy::{
    dual_proxy, single_proxy, DualProxyDriver, InterceptDriver, Interceptor, InterceptorFactory,
};
