//! Wire-layer integration: pooling over proxy drivers, concurrent clients,
//! and cost accounting across the deployment architectures.

// Test crate: unwrap/expect are the idiomatic assertion style here.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use resildb_engine::{Database, Flavor};
use resildb_sim::{CostModel, Micros, SimContext};
use resildb_wire::{
    dual_proxy, single_proxy, Connection, ConnectionPool, Driver, Interceptor, InterceptorFactory,
    LinkProfile, NativeDriver, Response, WireError,
};

/// A pass-through interceptor that tags a session-local statement count
/// into a bookkeeping table, proving per-connection interceptor state.
struct Counting {
    statements: u64,
}

impl Interceptor for Counting {
    fn intercept(
        &mut self,
        sql: &str,
        downstream: &mut dyn Connection,
    ) -> Result<Response, WireError> {
        self.statements += 1;
        downstream.execute(sql)
    }
}

fn factory() -> Box<dyn InterceptorFactory> {
    Box::new(|| Box::new(Counting { statements: 0 }) as Box<dyn Interceptor>)
}

#[test]
fn pool_over_proxy_driver_keeps_interceptors_per_connection() {
    let db = Database::in_memory(Flavor::Postgres);
    let driver = single_proxy(db.clone(), LinkProfile::local(), factory());
    let pool = ConnectionPool::new(driver, 2);
    {
        let mut c1 = pool.get().unwrap();
        c1.execute("CREATE TABLE t (a INTEGER)").unwrap();
        let mut c2 = pool.get().unwrap();
        c2.execute("INSERT INTO t (a) VALUES (1)").unwrap();
        assert_eq!(pool.in_use(), 2);
    }
    assert_eq!(pool.idle(), 2);
    assert_eq!(db.row_count("t").unwrap(), 1);
}

#[test]
fn concurrent_pooled_clients_share_one_database() {
    let db = Database::in_memory(Flavor::Oracle);
    {
        let mut c = NativeDriver::new(db.clone(), LinkProfile::local())
            .connect()
            .unwrap();
        c.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
            .unwrap();
    }
    let pool = ConnectionPool::new(NativeDriver::new(db.clone(), LinkProfile::local()), 8);
    let mut handles = Vec::new();
    for t in 0..4i64 {
        let pool = pool.clone();
        handles.push(std::thread::spawn(move || {
            let mut conn = pool.get().unwrap();
            for i in 0..10 {
                conn.execute(&format!(
                    "INSERT INTO t (id, v) VALUES ({}, {i})",
                    t * 100 + i
                ))
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(db.row_count("t").unwrap(), 40);
    // Between 1 and 4 connections were created depending on scheduling;
    // all of them must be back in the pool.
    assert_eq!(pool.in_use(), 0);
    assert!((1..=4).contains(&pool.idle()), "idle: {}", pool.idle());
}

#[test]
fn network_bytes_scale_with_result_width() {
    let sim = SimContext::new(CostModel::free(), 64);
    let db = Database::new("x", Flavor::Postgres, sim);
    let mut conn = NativeDriver::new(db.clone(), LinkProfile::lan())
        .connect()
        .unwrap();
    conn.execute("CREATE TABLE t (a INTEGER, pad VARCHAR(100))")
        .unwrap();
    for i in 0..20 {
        conn.execute(&format!(
            "INSERT INTO t (a, pad) VALUES ({i}, 'xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx')"
        ))
        .unwrap();
    }
    let before = db.sim().stats().network_bytes.get();
    conn.execute("SELECT a FROM t").unwrap();
    let narrow = db.sim().stats().network_bytes.get() - before;
    let before = db.sim().stats().network_bytes.get();
    conn.execute("SELECT a, pad FROM t").unwrap();
    let wide = db.sim().stats().network_bytes.get() - before;
    assert!(
        wide > narrow + 20 * 40,
        "padding columns must show up on the wire: narrow {narrow}, wide {wide}"
    );
}

#[test]
fn dual_proxy_charges_client_link_once_per_client_statement() {
    let sim = SimContext::new(CostModel::free(), 64);
    let db = Database::new("x", Flavor::Postgres, sim);
    let driver = dual_proxy(db.clone(), LinkProfile::lan(), factory());
    let mut conn = driver.connect().unwrap();
    conn.execute("CREATE TABLE t (a INTEGER)").unwrap();
    conn.execute("INSERT INTO t (a) VALUES (1)").unwrap();
    // Each client statement = 1 client-proxy round trip + 1 local
    // (server-proxy → DBMS) round trip.
    assert_eq!(db.sim().stats().round_trips.get(), 4);
    // The LAN leg dominates the clock: >= 2 × 200us.
    assert!(db.sim().clock().now() >= Micros::new(2 * 200));
}

#[test]
fn pool_recovers_capacity_after_connect_failure() {
    /// A driver that fails every connection attempt.
    struct Broken;
    impl Driver for Broken {
        fn connect(&self) -> Result<Box<dyn Connection>, WireError> {
            Err(WireError::Protocol("down".into()))
        }
    }
    let pool = ConnectionPool::new(Broken, 1);
    assert!(pool.get().is_err());
    // The failed checkout must not leak capacity.
    assert_eq!(pool.in_use(), 0);
    assert!(pool.get().is_err(), "still failing, but not exhausted");
}
