//! Model-based property tests: the engine must agree with a trivial
//! in-memory model under arbitrary sequences of inserts, updates, deletes
//! and transactional rollbacks — on every flavor.

// Test crate: unwrap/expect are the idiomatic assertion style here.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use std::collections::BTreeMap;

use proptest::prelude::*;
use resildb_engine::{Database, Flavor, Value};

#[derive(Debug, Clone)]
enum Op {
    Insert {
        id: i64,
        v: i64,
    },
    UpdateSet {
        id: i64,
        v: i64,
    },
    UpdateAdd {
        id: i64,
        delta: i64,
    },
    Delete {
        id: i64,
    },
    /// BEGIN, apply the inner ops, ROLLBACK — must leave no trace.
    RolledBack(Vec<Op>),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let leaf = prop_oneof![
        (0i64..20, 0i64..100).prop_map(|(id, v)| Op::Insert { id, v }),
        (0i64..20, 0i64..100).prop_map(|(id, v)| Op::UpdateSet { id, v }),
        (0i64..20, -5i64..5).prop_map(|(id, delta)| Op::UpdateAdd { id, delta }),
        (0i64..20).prop_map(|id| Op::Delete { id }),
    ];
    leaf.clone().prop_recursive(1, 8, 4, move |_| {
        proptest::collection::vec(leaf.clone(), 1..4).prop_map(Op::RolledBack)
    })
}

/// Applies one op to the engine; duplicate-key inserts are allowed to fail
/// (the model skips them identically).
fn apply_engine(session: &mut resildb_engine::Session, op: &Op, model: &mut BTreeMap<i64, i64>) {
    match op {
        Op::Insert { id, v } => {
            let r = session.execute_sql(&format!("INSERT INTO t (id, v) VALUES ({id}, {v})"));
            match r {
                Ok(_) => {
                    let prev = model.insert(*id, *v);
                    assert!(prev.is_none(), "engine accepted duplicate key {id}");
                }
                Err(resildb_engine::EngineError::DuplicateKey(_)) => {
                    assert!(model.contains_key(id), "engine rejected fresh key {id}");
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        Op::UpdateSet { id, v } => {
            session
                .execute_sql(&format!("UPDATE t SET v = {v} WHERE id = {id}"))
                .unwrap();
            if let Some(slot) = model.get_mut(id) {
                *slot = *v;
            }
        }
        Op::UpdateAdd { id, delta } => {
            session
                .execute_sql(&format!("UPDATE t SET v = v + {delta} WHERE id = {id}"))
                .unwrap();
            if let Some(slot) = model.get_mut(id) {
                *slot += *delta;
            }
        }
        Op::Delete { id } => {
            session
                .execute_sql(&format!("DELETE FROM t WHERE id = {id}"))
                .unwrap();
            model.remove(id);
        }
        Op::RolledBack(ops) => {
            session.execute_sql("BEGIN").unwrap();
            // Apply against a throwaway model copy: effects must vanish at
            // ROLLBACK (the copy persists across the inner ops so duplicate
            // detection inside the transaction stays consistent).
            let mut scratch = model.clone();
            for op in ops {
                apply_engine(session, op, &mut scratch);
            }
            session.execute_sql("ROLLBACK").unwrap();
        }
    }
}

fn engine_state(db: &Database) -> BTreeMap<i64, i64> {
    let mut s = db.session();
    s.query("SELECT id, v FROM t ORDER BY id")
        .unwrap()
        .rows
        .into_iter()
        .map(|row| match (&row[0], &row[1]) {
            (Value::Int(a), Value::Int(b)) => (*a, *b),
            other => panic!("{other:?}"),
        })
        .collect()
}

fn check(flavor: Flavor, ops: &[Op]) {
    let db = Database::in_memory(flavor);
    let mut session = db.session();
    session
        .execute_sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    let mut model = BTreeMap::new();
    for op in ops {
        apply_engine(&mut session, op, &mut model);
    }
    prop_assert_eq_like(&engine_state(&db), &model);
    // The WAL must replay to the same state.
    db.simulate_crash_and_recover().unwrap();
    prop_assert_eq_like(&engine_state(&db), &model);
}

fn prop_assert_eq_like(a: &BTreeMap<i64, i64>, b: &BTreeMap<i64, i64>) {
    assert_eq!(a, b);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn engine_matches_model_postgres(ops in proptest::collection::vec(op_strategy(), 1..25)) {
        check(Flavor::Postgres, &ops);
    }

    #[test]
    fn engine_matches_model_sybase(ops in proptest::collection::vec(op_strategy(), 1..25)) {
        check(Flavor::Sybase, &ops);
    }

    #[test]
    fn engine_matches_model_oracle(ops in proptest::collection::vec(op_strategy(), 1..25)) {
        check(Flavor::Oracle, &ops);
    }
}
