//! Executor edge cases: resolution errors, three-way joins, prefix-index
//! access paths, NULL handling in sorts, and concurrent sessions.

// Test crate: unwrap/expect are the idiomatic assertion style here.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use resildb_engine::{Database, EngineError, Flavor, Value};

fn db() -> Database {
    Database::in_memory(Flavor::Postgres)
}

#[test]
fn three_way_join_with_cross_predicates() {
    let db = db();
    let mut s = db.session();
    s.execute_sql("CREATE TABLE a (id INTEGER PRIMARY KEY, x INTEGER)")
        .unwrap();
    s.execute_sql("CREATE TABLE b (id INTEGER PRIMARY KEY, a_id INTEGER)")
        .unwrap();
    s.execute_sql("CREATE TABLE c (id INTEGER PRIMARY KEY, b_id INTEGER, v VARCHAR(4))")
        .unwrap();
    s.execute_sql("INSERT INTO a (id, x) VALUES (1, 10), (2, 20)")
        .unwrap();
    s.execute_sql("INSERT INTO b (id, a_id) VALUES (1, 1), (2, 2), (3, 1)")
        .unwrap();
    s.execute_sql("INSERT INTO c (id, b_id, v) VALUES (1, 1, 'p'), (2, 3, 'q'), (3, 2, 'r')")
        .unwrap();
    let r = s
        .query(
            "SELECT a.x, c.v FROM a, b, c \
             WHERE b.a_id = a.id AND c.b_id = b.id AND a.id = 1 ORDER BY c.v",
        )
        .unwrap();
    assert_eq!(
        r.rows,
        vec![
            vec![Value::Int(10), Value::from("p")],
            vec![Value::Int(10), Value::from("q")],
        ]
    );
}

#[test]
fn ambiguous_unqualified_column_is_an_error() {
    let db = db();
    let mut s = db.session();
    s.execute_sql("CREATE TABLE t1 (id INTEGER, v INTEGER)")
        .unwrap();
    s.execute_sql("CREATE TABLE t2 (id INTEGER, w INTEGER)")
        .unwrap();
    s.execute_sql("INSERT INTO t1 (id, v) VALUES (1, 1)")
        .unwrap();
    s.execute_sql("INSERT INTO t2 (id, w) VALUES (1, 1)")
        .unwrap();
    let err = s.query("SELECT id FROM t1, t2").unwrap_err();
    assert!(matches!(err, EngineError::AmbiguousColumn(_)), "{err}");
    // Qualified access works.
    assert_eq!(s.query("SELECT t1.id FROM t1, t2").unwrap().rows.len(), 1);
}

#[test]
fn unknown_table_alias_in_projection_is_an_error() {
    let db = db();
    let mut s = db.session();
    s.execute_sql("CREATE TABLE t (id INTEGER)").unwrap();
    assert!(matches!(
        s.query("SELECT zz.id FROM t"),
        Err(EngineError::UnknownTable(_))
    ));
    assert!(matches!(
        s.query("SELECT zz.* FROM t"),
        Err(EngineError::UnknownTable(_))
    ));
}

#[test]
fn nulls_sort_stably_and_compare_unknown() {
    let db = db();
    let mut s = db.session();
    s.execute_sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    s.execute_sql("INSERT INTO t (id, v) VALUES (1, 3), (2, NULL), (3, 1)")
        .unwrap();
    // NULL never matches an equality or range predicate.
    assert!(s
        .query("SELECT id FROM t WHERE v = 1 AND id = 2")
        .unwrap()
        .rows
        .is_empty());
    let r = s.query("SELECT id FROM t WHERE v > 0 ORDER BY v").unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(3)], vec![Value::Int(1)]]);
    // IS NULL finds it.
    let r = s.query("SELECT id FROM t WHERE v IS NULL").unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
}

#[test]
fn prefix_index_and_full_scan_agree() {
    let db = db();
    let mut s = db.session();
    s.execute_sql(
        "CREATE TABLE ol (w INTEGER, d INTEGER, o INTEGER, n INTEGER, amt FLOAT, \
         PRIMARY KEY (w, d, o, n))",
    )
    .unwrap();
    for w in 1..=2 {
        for d in 1..=2 {
            for o in 1..=5 {
                for n in 1..=2 {
                    s.execute_sql(&format!(
                        "INSERT INTO ol (w, d, o, n, amt) VALUES ({w}, {d}, {o}, {n}, {o}.5)"
                    ))
                    .unwrap();
                }
            }
        }
    }
    // Prefix-index path (equality on w, d) with a range on o.
    let indexed = s
        .query("SELECT o, n FROM ol WHERE w = 2 AND d = 1 AND o BETWEEN 2 AND 4 ORDER BY o, n")
        .unwrap();
    // Same predicate phrased so no index prefix applies (range on w).
    let scanned = s
        .query("SELECT o, n FROM ol WHERE w > 1 AND d = 1 AND o BETWEEN 2 AND 4 ORDER BY o, n")
        .unwrap();
    assert_eq!(indexed.rows.len(), 6);
    assert_eq!(indexed.rows, scanned.rows);
}

#[test]
fn update_changing_pk_reindexes() {
    let db = db();
    let mut s = db.session();
    s.execute_sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    s.execute_sql("INSERT INTO t (id, v) VALUES (1, 10)")
        .unwrap();
    s.execute_sql("UPDATE t SET id = 2 WHERE id = 1").unwrap();
    assert!(s
        .query("SELECT v FROM t WHERE id = 1")
        .unwrap()
        .rows
        .is_empty());
    assert_eq!(
        s.query("SELECT v FROM t WHERE id = 2").unwrap().rows[0][0],
        Value::Int(10)
    );
}

#[test]
fn update_to_conflicting_pk_is_rejected() {
    let db = db();
    let mut s = db.session();
    s.execute_sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    s.execute_sql("INSERT INTO t (id, v) VALUES (1, 10), (2, 20)")
        .unwrap();
    let err = s
        .execute_sql("UPDATE t SET id = 2 WHERE id = 1")
        .unwrap_err();
    assert!(matches!(err, EngineError::DuplicateKey(_)));
    // Auto-commit statement rolled back: both rows intact.
    assert_eq!(db.row_count("t").unwrap(), 2);
    assert_eq!(
        s.query("SELECT v FROM t WHERE id = 1").unwrap().rows[0][0],
        Value::Int(10)
    );
}

#[test]
fn division_by_zero_surfaces_and_aborts_statement() {
    let db = db();
    let mut s = db.session();
    s.execute_sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v INTEGER)")
        .unwrap();
    s.execute_sql("INSERT INTO t (id, v) VALUES (1, 0), (2, 5)")
        .unwrap();
    let err = s.query("SELECT 10 / v FROM t").unwrap_err();
    assert!(matches!(err, EngineError::Type(_)));
}

#[test]
fn order_by_expression_and_multiple_keys() {
    let db = db();
    let mut s = db.session();
    s.execute_sql("CREATE TABLE t (a INTEGER, b INTEGER)")
        .unwrap();
    s.execute_sql("INSERT INTO t (a, b) VALUES (1, 3), (2, 1), (1, 1), (2, 2)")
        .unwrap();
    let r = s
        .query("SELECT a, b FROM t ORDER BY a DESC, a * 10 + b")
        .unwrap();
    assert_eq!(
        r.rows,
        vec![
            vec![Value::Int(2), Value::Int(1)],
            vec![Value::Int(2), Value::Int(2)],
            vec![Value::Int(1), Value::Int(1)],
            vec![Value::Int(1), Value::Int(3)],
        ]
    );
}

#[test]
fn group_by_composite_key_and_having_free_filtering() {
    let db = db();
    let mut s = db.session();
    s.execute_sql("CREATE TABLE t (r VARCHAR(2), q INTEGER, amt INTEGER)")
        .unwrap();
    s.execute_sql(
        "INSERT INTO t (r, q, amt) VALUES ('e', 1, 5), ('e', 1, 7), ('e', 2, 1), ('w', 1, 9)",
    )
    .unwrap();
    let r = s
        .query("SELECT r, q, SUM(amt), AVG(amt) FROM t GROUP BY r, q ORDER BY r, q")
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    assert_eq!(r.rows[0][2], Value::Int(12));
    assert_eq!(r.rows[0][3], Value::Float(6.0));
}

#[test]
fn concurrent_tpcc_style_counter_updates_are_serializable() {
    // 4 threads × 25 increments on one row must produce exactly 100.
    let db = db();
    {
        let mut s = db.session();
        s.execute_sql("CREATE TABLE counter (id INTEGER PRIMARY KEY, n INTEGER)")
            .unwrap();
        s.execute_sql("INSERT INTO counter (id, n) VALUES (1, 0)")
            .unwrap();
    }
    let mut handles = Vec::new();
    for _ in 0..4 {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            let mut s = db.session();
            for _ in 0..25 {
                loop {
                    match s.execute_sql("UPDATE counter SET n = n + 1 WHERE id = 1") {
                        Ok(_) => break,
                        Err(EngineError::Deadlock) => continue,
                        Err(e) => panic!("{e}"),
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut s = db.session();
    assert_eq!(
        s.query("SELECT n FROM counter WHERE id = 1").unwrap().rows[0][0],
        Value::Int(100)
    );
}

#[test]
fn concurrent_transfers_preserve_total_balance() {
    let db = db();
    {
        let mut s = db.session();
        s.execute_sql("CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER)")
            .unwrap();
        s.execute_sql("INSERT INTO acct (id, bal) VALUES (1, 500), (2, 500), (3, 500)")
            .unwrap();
    }
    let mut handles = Vec::new();
    for t in 0..3i64 {
        let db = db.clone();
        handles.push(std::thread::spawn(move || {
            let mut s = db.session();
            let from = t + 1;
            let to = (t + 1) % 3 + 1;
            for _ in 0..20 {
                loop {
                    let attempt = (|| -> Result<(), EngineError> {
                        s.execute_sql("BEGIN")?;
                        s.execute_sql(&format!("UPDATE acct SET bal = bal - 5 WHERE id = {from}"))?;
                        s.execute_sql(&format!("UPDATE acct SET bal = bal + 5 WHERE id = {to}"))?;
                        s.execute_sql("COMMIT")?;
                        Ok(())
                    })();
                    match attempt {
                        Ok(()) => break,
                        Err(EngineError::Deadlock) => continue,
                        Err(e) => panic!("{e}"),
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut s = db.session();
    let r = s.query("SELECT SUM(bal) FROM acct").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1500), "money is conserved");
}
