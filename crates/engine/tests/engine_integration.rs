//! End-to-end engine tests: SQL in, correct state and log out.

// Test crate: unwrap/expect are the idiomatic assertion style here.
#![allow(clippy::unwrap_used, clippy::expect_used)]
use resildb_engine::{introspect, Database, EngineError, ExecOutcome, Flavor, LogOp, Value};

fn db() -> Database {
    Database::in_memory(Flavor::Postgres)
}

fn setup_accounts(db: &Database) {
    let mut s = db.session();
    s.execute_sql(
        "CREATE TABLE account (id INTEGER PRIMARY KEY, owner VARCHAR(16), balance FLOAT)",
    )
    .unwrap();
    s.execute_sql(
        "INSERT INTO account (id, owner, balance) VALUES \
         (1, 'alice', 100.0), (2, 'bob', 50.0), (3, 'carol', 75.0)",
    )
    .unwrap();
}

#[test]
fn basic_crud_cycle() {
    let db = db();
    setup_accounts(&db);
    let mut s = db.session();

    let r = s
        .query("SELECT owner FROM account WHERE balance > 60 ORDER BY owner")
        .unwrap();
    assert_eq!(
        r.rows,
        vec![vec![Value::from("alice")], vec![Value::from("carol")]]
    );

    assert_eq!(
        s.execute_sql("UPDATE account SET balance = balance - 10 WHERE id = 1")
            .unwrap(),
        ExecOutcome::Affected(1)
    );
    let r = s.query("SELECT balance FROM account WHERE id = 1").unwrap();
    assert_eq!(r.rows[0][0], Value::Float(90.0));

    assert_eq!(
        s.execute_sql("DELETE FROM account WHERE owner = 'bob'")
            .unwrap(),
        ExecOutcome::Affected(1)
    );
    assert_eq!(db.row_count("account").unwrap(), 2);
}

#[test]
fn explicit_transaction_commit_and_rollback() {
    let db = db();
    setup_accounts(&db);
    let mut s = db.session();

    s.execute_sql("BEGIN").unwrap();
    s.execute_sql("UPDATE account SET balance = 0.0 WHERE id = 1")
        .unwrap();
    s.execute_sql("ROLLBACK").unwrap();
    let r = s.query("SELECT balance FROM account WHERE id = 1").unwrap();
    assert_eq!(r.rows[0][0], Value::Float(100.0), "rollback must restore");

    s.execute_sql("BEGIN").unwrap();
    s.execute_sql("UPDATE account SET balance = 0.0 WHERE id = 1")
        .unwrap();
    s.execute_sql("COMMIT").unwrap();
    let r = s.query("SELECT balance FROM account WHERE id = 1").unwrap();
    assert_eq!(r.rows[0][0], Value::Float(0.0));
}

#[test]
fn rollback_restores_deletes_and_inserts() {
    let db = db();
    setup_accounts(&db);
    let mut s = db.session();
    s.execute_sql("BEGIN").unwrap();
    s.execute_sql("DELETE FROM account WHERE id = 2").unwrap();
    s.execute_sql("INSERT INTO account (id, owner, balance) VALUES (9, 'mallory', 1.0)")
        .unwrap();
    s.execute_sql("ROLLBACK").unwrap();
    assert_eq!(db.row_count("account").unwrap(), 3);
    let mut s = db.session();
    let r = s.query("SELECT owner FROM account WHERE id = 2").unwrap();
    assert_eq!(r.rows[0][0], Value::from("bob"));
    assert!(s
        .query("SELECT id FROM account WHERE id = 9")
        .unwrap()
        .rows
        .is_empty());
}

#[test]
fn txn_control_outside_transaction_errors() {
    let db = db();
    let mut s = db.session();
    assert!(matches!(
        s.execute_sql("COMMIT"),
        Err(EngineError::InvalidTransactionState(_))
    ));
    assert!(matches!(
        s.execute_sql("ROLLBACK"),
        Err(EngineError::InvalidTransactionState(_))
    ));
    s.execute_sql("BEGIN").unwrap();
    assert!(matches!(
        s.execute_sql("BEGIN"),
        Err(EngineError::InvalidTransactionState(_))
    ));
}

#[test]
fn joins_with_aliases() {
    let db = db();
    let mut s = db.session();
    s.execute_sql("CREATE TABLE w (w_id INTEGER PRIMARY KEY, w_name VARCHAR(8))")
        .unwrap();
    s.execute_sql("CREATE TABLE d (d_id INTEGER, d_w_id INTEGER, d_name VARCHAR(8), PRIMARY KEY (d_w_id, d_id))").unwrap();
    s.execute_sql("INSERT INTO w (w_id, w_name) VALUES (1, 'one'), (2, 'two')")
        .unwrap();
    s.execute_sql(
        "INSERT INTO d (d_id, d_w_id, d_name) VALUES (1, 1, 'd11'), (2, 1, 'd12'), (1, 2, 'd21')",
    )
    .unwrap();
    let r = s
        .query(
            "SELECT w.w_name, x.d_name FROM w, d x \
             WHERE w.w_id = x.d_w_id AND w.w_id = 1 ORDER BY x.d_id",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0], vec![Value::from("one"), Value::from("d11")]);
    assert_eq!(r.columns, vec!["w_name", "d_name"]);
}

#[test]
fn aggregates_and_group_by() {
    let db = db();
    setup_accounts(&db);
    let mut s = db.session();
    let r = s
        .query("SELECT COUNT(*), SUM(balance), MIN(owner) FROM account")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(3));
    assert_eq!(r.rows[0][1], Value::Float(225.0));
    assert_eq!(r.rows[0][2], Value::from("alice"));

    s.execute_sql("CREATE TABLE sale (region VARCHAR(4), amt INTEGER)")
        .unwrap();
    s.execute_sql(
        "INSERT INTO sale (region, amt) VALUES ('e', 1), ('e', 2), ('w', 10), ('w', 20), ('w', 30)",
    )
    .unwrap();
    let r = s
        .query("SELECT region, SUM(amt), COUNT(*) FROM sale GROUP BY region ORDER BY region")
        .unwrap();
    assert_eq!(
        r.rows,
        vec![
            vec![Value::from("e"), Value::Int(3), Value::Int(2)],
            vec![Value::from("w"), Value::Int(60), Value::Int(3)],
        ]
    );
}

#[test]
fn aggregate_over_empty_table() {
    let db = db();
    let mut s = db.session();
    s.execute_sql("CREATE TABLE t (a INTEGER)").unwrap();
    let r = s.query("SELECT COUNT(*), SUM(a) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(0));
    assert!(r.rows[0][1].is_null());
    // Grouped aggregate over empty input yields no rows.
    let r = s.query("SELECT a, COUNT(*) FROM t GROUP BY a").unwrap();
    assert!(r.rows.is_empty());
}

#[test]
fn wildcard_and_qualified_wildcard() {
    let db = db();
    setup_accounts(&db);
    let mut s = db.session();
    let r = s.query("SELECT * FROM account WHERE id = 1").unwrap();
    assert_eq!(r.columns, vec!["id", "owner", "balance"]);
    let r = s
        .query("SELECT account.* FROM account WHERE id = 1")
        .unwrap();
    assert_eq!(r.rows[0].len(), 3);
}

#[test]
fn limit_and_order_desc() {
    let db = db();
    setup_accounts(&db);
    let mut s = db.session();
    let r = s
        .query("SELECT owner FROM account ORDER BY balance DESC LIMIT 2")
        .unwrap();
    assert_eq!(
        r.rows,
        vec![vec![Value::from("alice")], vec![Value::from("carol")]]
    );
}

#[test]
fn ctid_pseudocolumn_lookup_on_postgres_flavor() {
    let db = db();
    setup_accounts(&db);
    let mut s = db.session();
    let r = s
        .query("SELECT ctid, owner FROM account WHERE id = 2")
        .unwrap();
    let Value::Int(ctid) = r.rows[0][0] else {
        panic!()
    };
    let r2 = s
        .query(&format!("SELECT owner FROM account WHERE ctid = {ctid}"))
        .unwrap();
    assert_eq!(r2.rows[0][0], Value::from("bob"));
    // Compensation-style update by ctid:
    s.execute_sql(&format!(
        "UPDATE account SET balance = 42.0 WHERE ctid = {ctid}"
    ))
    .unwrap();
    let r3 = s.query("SELECT balance FROM account WHERE id = 2").unwrap();
    assert_eq!(r3.rows[0][0], Value::Float(42.0));
}

#[test]
fn sybase_flavor_has_no_rowid_pseudocolumn() {
    let db = Database::in_memory(Flavor::Sybase);
    let mut s = db.session();
    s.execute_sql("CREATE TABLE t (a INTEGER)").unwrap();
    s.execute_sql("INSERT INTO t (a) VALUES (1)").unwrap();
    assert!(matches!(
        s.query("SELECT ctid FROM t"),
        Err(EngineError::UnknownColumn(_))
    ));
    assert!(matches!(
        s.query("SELECT rowid FROM t"),
        Err(EngineError::UnknownColumn(_))
    ));
}

#[test]
fn wal_records_row_operations_with_locations() {
    let db = db();
    setup_accounts(&db);
    let mut s = db.session();
    s.execute_sql("BEGIN").unwrap();
    s.execute_sql("UPDATE account SET balance = 1.0 WHERE id = 1")
        .unwrap();
    s.execute_sql("DELETE FROM account WHERE id = 3").unwrap();
    s.execute_sql("COMMIT").unwrap();
    let wal = db.wal_records();
    let update = wal
        .iter()
        .find_map(|r| match &r.op {
            LogOp::Update {
                table,
                changed,
                before,
                after,
                ..
            } if table == "account" => Some((changed.clone(), before.clone(), after.clone())),
            _ => None,
        })
        .expect("update logged");
    assert_eq!(update.0, vec![2], "only balance changed");
    assert_eq!(update.1 .0[2], Value::Float(100.0));
    assert_eq!(update.2 .0[2], Value::Float(1.0));
    assert!(wal
        .iter()
        .any(|r| matches!(&r.op, LogOp::Delete { table, .. } if table == "account")));
    // The explicit txn ends with exactly one commit record.
    let commits = wal.iter().filter(|r| matches!(r.op, LogOp::Commit)).count();
    assert!(commits >= 2); // setup txns + explicit txn
}

#[test]
fn crash_recovery_replays_committed_and_skips_aborted() {
    let db = db();
    setup_accounts(&db);
    let mut s = db.session();
    // Committed change.
    s.execute_sql("UPDATE account SET balance = 7.0 WHERE id = 1")
        .unwrap();
    // Aborted change.
    s.execute_sql("BEGIN").unwrap();
    s.execute_sql("UPDATE account SET balance = 999.0 WHERE id = 2")
        .unwrap();
    s.execute_sql("INSERT INTO account (id, owner, balance) VALUES (4, 'eve', 0.0)")
        .unwrap();
    s.execute_sql("ROLLBACK").unwrap();
    drop(s);

    db.simulate_crash_and_recover().unwrap();

    let mut s = db.session();
    assert_eq!(
        s.query("SELECT balance FROM account WHERE id = 1")
            .unwrap()
            .rows[0][0],
        Value::Float(7.0)
    );
    assert_eq!(
        s.query("SELECT balance FROM account WHERE id = 2")
            .unwrap()
            .rows[0][0],
        Value::Float(50.0)
    );
    assert!(s
        .query("SELECT id FROM account WHERE id = 4")
        .unwrap()
        .rows
        .is_empty());
    assert_eq!(db.row_count("account").unwrap(), 3);
}

#[test]
fn recovery_preserves_row_ids() {
    let db = db();
    setup_accounts(&db);
    let before = db.snapshot_rows("account").unwrap();
    db.simulate_crash_and_recover().unwrap();
    let after = db.snapshot_rows("account").unwrap();
    assert_eq!(before, after);
}

#[test]
fn logminer_only_on_oracle_flavor() {
    let pg = Database::in_memory(Flavor::Postgres);
    assert!(matches!(
        introspect::logminer(&pg),
        Err(EngineError::Unsupported(_))
    ));
    let ora = Database::in_memory(Flavor::Oracle);
    assert!(introspect::logminer(&ora).unwrap().is_empty());
    assert!(matches!(
        introspect::waldump(&ora),
        Err(EngineError::Unsupported(_))
    ));
    assert!(matches!(
        introspect::dbcc_log(&ora),
        Err(EngineError::Unsupported(_))
    ));
}

#[test]
fn logminer_redo_undo_sql_round_trip() {
    let db = Database::in_memory(Flavor::Oracle);
    let mut s = db.session();
    s.execute_sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR(8))")
        .unwrap();
    s.execute_sql("INSERT INTO t (id, v) VALUES (1, 'x')")
        .unwrap();
    s.execute_sql("UPDATE t SET v = 'y' WHERE id = 1").unwrap();
    let rows = introspect::logminer(&db).unwrap();
    let upd = rows.iter().find(|r| r.operation == "UPDATE").unwrap();
    // Executing sql_undo restores the pre-update state.
    s.execute_sql(upd.sql_undo.as_ref().unwrap()).unwrap();
    assert_eq!(
        s.query("SELECT v FROM t WHERE id = 1").unwrap().rows[0][0],
        Value::from("x")
    );
    // And sql_redo re-applies it.
    s.execute_sql(upd.sql_redo.as_ref().unwrap()).unwrap();
    assert_eq!(
        s.query("SELECT v FROM t WHERE id = 1").unwrap().rows[0][0],
        Value::from("y")
    );
}

#[test]
fn dbcc_log_modify_carries_only_changed_attributes() {
    let db = Database::in_memory(Flavor::Sybase);
    let mut s = db.session();
    s.execute_sql("CREATE TABLE t (a INTEGER, b VARCHAR(8), rid INTEGER IDENTITY)")
        .unwrap();
    s.execute_sql("INSERT INTO t (a, b) VALUES (1, 'x')")
        .unwrap();
    s.execute_sql("UPDATE t SET a = 2 WHERE a = 1").unwrap();
    let log = introspect::dbcc_log(&db).unwrap();
    let modify = log
        .iter()
        .find(|r| r.op == introspect::DbccOp::Modify)
        .unwrap();
    // Delta encoding: u16 col index + before + after for ONE column.
    let expected = 2 + 2 * (1 + 8);
    assert_eq!(modify.bytes.len(), expected);
    assert_eq!(u16::from_le_bytes([modify.bytes[0], modify.bytes[1]]), 0);
    // The full row (with identity) is recoverable via dbcc page.
    let raw = introspect::dbcc_page(&db, "t", modify.page, modify.offset, modify.len).unwrap();
    let schema = db.table("t").unwrap().read().schema().clone();
    let row = resildb_engine::decode_row(&schema, &raw).unwrap();
    assert_eq!(row.0[0], Value::Int(2));
    assert_eq!(
        row.0[2],
        Value::Int(1),
        "identity column recovered from page"
    );
}

#[test]
fn deadlock_victim_is_rolled_back() {
    use std::sync::Barrier;
    let db = db();
    setup_accounts(&db);
    let barrier = std::sync::Arc::new(Barrier::new(2));
    let db2 = db.clone();
    let b2 = std::sync::Arc::clone(&barrier);
    let handle = std::thread::spawn(move || {
        let mut s = db2.session();
        s.execute_sql("BEGIN").unwrap();
        s.execute_sql("UPDATE account SET balance = 201.0 WHERE id = 2")
            .unwrap();
        b2.wait();
        // Now try to touch row 1 (other session holds it).
        let r = s.execute_sql("UPDATE account SET balance = 101.0 WHERE id = 1");
        if r.is_ok() {
            s.execute_sql("COMMIT").unwrap();
        }
        r.is_ok()
    });
    let mut s = db.session();
    s.execute_sql("BEGIN").unwrap();
    s.execute_sql("UPDATE account SET balance = 102.0 WHERE id = 1")
        .unwrap();
    barrier.wait();
    std::thread::sleep(std::time::Duration::from_millis(100));
    let mine = s.execute_sql("UPDATE account SET balance = 202.0 WHERE id = 2");
    let mine_ok = mine.is_ok();
    if mine_ok {
        s.execute_sql("COMMIT").unwrap();
    } else {
        assert_eq!(mine.unwrap_err(), EngineError::Deadlock);
        assert!(!s.in_transaction(), "victim auto-rolled-back");
    }
    let theirs_ok = handle.join().unwrap();
    assert!(
        mine_ok || theirs_ok,
        "at least one transaction must survive the deadlock"
    );
}

#[test]
fn select_for_update_blocks_conflicting_writer() {
    let db = db();
    setup_accounts(&db);
    let mut s1 = db.session();
    s1.execute_sql("BEGIN").unwrap();
    s1.query("SELECT * FROM account WHERE id = 1 FOR UPDATE")
        .unwrap();
    let db2 = db.clone();
    let handle = std::thread::spawn(move || {
        let mut s2 = db2.session();
        let start = std::time::Instant::now();
        s2.execute_sql("UPDATE account SET balance = 0.0 WHERE id = 1")
            .unwrap();
        start.elapsed()
    });
    std::thread::sleep(std::time::Duration::from_millis(120));
    s1.execute_sql("COMMIT").unwrap();
    let waited = handle.join().unwrap();
    assert!(
        waited >= std::time::Duration::from_millis(80),
        "writer should have blocked, waited only {waited:?}"
    );
}

#[test]
fn duplicate_key_error_in_autocommit_leaves_clean_state() {
    let db = db();
    setup_accounts(&db);
    let mut s = db.session();
    let err = s
        .execute_sql("INSERT INTO account (id, owner, balance) VALUES (1, 'dup', 0.0)")
        .unwrap_err();
    assert!(matches!(err, EngineError::DuplicateKey(_)));
    assert_eq!(db.row_count("account").unwrap(), 3);
    // Session still usable.
    assert_eq!(
        s.query("SELECT COUNT(*) FROM account").unwrap().rows[0][0],
        Value::Int(3)
    );
}

#[test]
fn multi_statement_error_in_explicit_txn_keeps_txn_open() {
    let db = db();
    setup_accounts(&db);
    let mut s = db.session();
    s.execute_sql("BEGIN").unwrap();
    s.execute_sql("UPDATE account SET balance = 5.0 WHERE id = 1")
        .unwrap();
    assert!(s.execute_sql("SELECT nope FROM account").is_err());
    assert!(s.in_transaction(), "non-deadlock errors keep the txn open");
    s.execute_sql("ROLLBACK").unwrap();
    let r = s.query("SELECT balance FROM account WHERE id = 1").unwrap();
    assert_eq!(r.rows[0][0], Value::Float(100.0));
}

#[test]
fn like_and_between_in_where() {
    let db = db();
    setup_accounts(&db);
    let mut s = db.session();
    let r = s
        .query("SELECT owner FROM account WHERE owner LIKE '%ol'")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::from("carol")]]);
    let r = s
        .query("SELECT id FROM account WHERE balance BETWEEN 50.0 AND 75.0 ORDER BY id")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
}

#[test]
fn in_list_and_not_in() {
    let db = db();
    setup_accounts(&db);
    let mut s = db.session();
    let r = s
        .query("SELECT id FROM account WHERE id IN (1, 3) ORDER BY id")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(1)], vec![Value::Int(3)]]);
    let r = s
        .query("SELECT id FROM account WHERE id NOT IN (1, 3)")
        .unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(2)]]);
}

#[test]
fn drop_table_removes_and_errors_afterwards() {
    let db = db();
    setup_accounts(&db);
    let mut s = db.session();
    s.execute_sql("DROP TABLE account").unwrap();
    assert!(matches!(
        s.query("SELECT * FROM account"),
        Err(EngineError::UnknownTable(_))
    ));
}

#[test]
fn sessions_share_one_database() {
    let db = db();
    setup_accounts(&db);
    let mut s1 = db.session();
    let mut s2 = db.session();
    s1.execute_sql("INSERT INTO account (id, owner, balance) VALUES (10, 'dan', 5.0)")
        .unwrap();
    let r = s2.query("SELECT owner FROM account WHERE id = 10").unwrap();
    assert_eq!(r.rows[0][0], Value::from("dan"));
}

#[test]
fn dropping_session_with_open_txn_rolls_back() {
    let db = db();
    setup_accounts(&db);
    {
        let mut s = db.session();
        s.execute_sql("BEGIN").unwrap();
        s.execute_sql("DELETE FROM account WHERE id = 1").unwrap();
        // dropped without COMMIT
    }
    assert_eq!(db.row_count("account").unwrap(), 3);
}
