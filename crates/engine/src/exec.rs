//! Statement execution: SELECT/INSERT/UPDATE/DELETE over the catalog.

use std::collections::HashMap;

use resildb_sim::SimContext;
use resildb_sql::{BinaryOp, ColumnRef, Expr, Select, SelectItem, Statement};

use crate::catalog::{Catalog, TableHandle};
use crate::error::{EngineError, Result};
use crate::expr::{eval, EmptyScope, Scope};
use crate::flavor::Flavor;
use crate::lock::{LockManager, ResourceId};
use crate::row::{Row, RowId};
use crate::schema::TableSchema;
use crate::value::Value;
use crate::wal::{stage_check, InternalTxnId, LogOp};

use parking_lot::RwLock;

/// Rows returned by a query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult {
    /// Output column names (aliases respected).
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    /// The single value of a 1×1 result, if the shape matches.
    pub fn scalar(&self) -> Option<&Value> {
        match (&self.rows[..], self.rows.first()) {
            ([_], Some(row)) if row.len() == 1 => row.first(),
            _ => None,
        }
    }
}

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// A SELECT produced rows.
    Rows(QueryResult),
    /// A DML statement affected this many rows.
    Affected(u64),
    /// DDL completed.
    Ddl,
    /// BEGIN/COMMIT/ROLLBACK completed.
    TxnControl,
}

impl ExecOutcome {
    /// The query result, if this outcome carries rows.
    pub fn rows(&self) -> Option<&QueryResult> {
        match self {
            ExecOutcome::Rows(r) => Some(r),
            _ => None,
        }
    }

    /// The affected-row count, if this was DML.
    pub fn affected(&self) -> Option<u64> {
        match self {
            ExecOutcome::Affected(n) => Some(*n),
            _ => None,
        }
    }
}

/// Inverse operations collected while a transaction runs, applied in
/// reverse order on rollback.
#[derive(Debug, Clone)]
pub enum UndoAction {
    /// Undo an insert: delete `rowid`.
    UnInsert {
        /// Table name.
        table: String,
        /// Row to remove.
        rowid: RowId,
    },
    /// Undo a delete: re-insert the saved image under its original id, at
    /// the physical slot it occupied. Restoring the exact location matters:
    /// an aborted transaction publishes no log records, so any layout
    /// change it left behind would be invisible to the Sybase offset
    /// recovery of paper §4.3.
    ReInsert {
        /// Table name.
        table: String,
        /// Original row id.
        rowid: RowId,
        /// Saved pre-delete image.
        row: Row,
        /// Physical location the row occupied before the delete.
        loc: crate::table::RowLocation,
    },
    /// Undo an update: restore the before-image.
    UnUpdate {
        /// Table name.
        table: String,
        /// Updated row id.
        rowid: RowId,
        /// Saved pre-update image.
        before: Row,
    },
}

/// Everything a statement needs from the database.
pub(crate) struct StmtCtx<'a> {
    pub catalog: &'a RwLock<Catalog>,
    pub locks: &'a LockManager,
    pub sim: &'a SimContext,
    pub flavor: Flavor,
    pub txn: InternalTxnId,
    pub undo: &'a mut Vec<UndoAction>,
    /// Transaction-local redo staging: each record pays its byte cost and
    /// failpoint at statement time via [`stage_check`], then waits here for
    /// commit-time publication under the group-commit ticket.
    pub redo: &'a mut Vec<LogOp>,
}

/// One table visible to a statement, with its binding name.
#[derive(Debug, Clone)]
struct Binding {
    /// The name the query uses (alias or table name), lower-cased.
    name: String,
    /// The underlying table name, lower-cased.
    table: String,
    schema: TableSchema,
}

/// One joined row: per binding, the row id and values.
type JoinedRow = Vec<(RowId, Row)>;

/// Scope over one joined row.
struct RowsScope<'a> {
    bindings: &'a [Binding],
    row: &'a JoinedRow,
    flavor: Flavor,
}

impl Scope for RowsScope<'_> {
    fn resolve(&self, col: &ColumnRef) -> Result<Value> {
        let name = col.column.to_ascii_lowercase();
        if let Some(tbl) = &col.table {
            let tbl = tbl.to_ascii_lowercase();
            let idx = self
                .bindings
                .iter()
                .position(|b| b.name == tbl)
                .ok_or_else(|| EngineError::UnknownTable(tbl.clone()))?;
            return self.resolve_in(idx, &name, col);
        }
        let mut hits = self
            .bindings
            .iter()
            .enumerate()
            .filter(|(_, b)| b.schema.has_column(&name));
        match (hits.next(), hits.next()) {
            (Some((idx, _)), None) => self.resolve_in(idx, &name, col),
            (Some(_), Some(_)) => Err(EngineError::AmbiguousColumn(name)),
            (None, _) => {
                // Pseudo row-id column for a single-table scope.
                if Some(name.as_str()) == self.flavor.rowid_pseudocolumn()
                    && self.bindings.len() == 1
                {
                    return Ok(Value::Int(self.row[0].0 .0 as i64));
                }
                Err(EngineError::UnknownColumn(name))
            }
        }
    }
}

impl RowsScope<'_> {
    fn resolve_in(&self, idx: usize, name: &str, col: &ColumnRef) -> Result<Value> {
        let b = &self.bindings[idx];
        if let Ok(ci) = b.schema.column_index(name) {
            return Ok(self.row[idx].1 .0[ci].clone());
        }
        if Some(name) == self.flavor.rowid_pseudocolumn() {
            return Ok(Value::Int(self.row[idx].0 .0 as i64));
        }
        Err(EngineError::UnknownColumn(col.to_string()))
    }
}

/// Splits a predicate into its top-level AND conjuncts.
fn split_conjuncts(expr: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Binary {
        left,
        op: BinaryOp::And,
        right,
    } = expr
    {
        split_conjuncts(left, out);
        split_conjuncts(right, out);
    } else {
        out.push(expr.clone());
    }
}

/// Which bindings a conjunct references. Pseudo row-id references count as
/// the named (or only) binding.
fn conjunct_bindings(expr: &Expr, bindings: &[Binding], flavor: Flavor) -> Result<Vec<usize>> {
    let mut referenced = Vec::new();
    let mut err = None;
    for col in expr.referenced_columns() {
        let name = col.column.to_ascii_lowercase();
        let idx = if let Some(tbl) = &col.table {
            let tbl = tbl.to_ascii_lowercase();
            match bindings.iter().position(|b| b.name == tbl) {
                Some(i) => i,
                None => {
                    err = Some(EngineError::UnknownTable(tbl));
                    break;
                }
            }
        } else {
            let hits: Vec<usize> = bindings
                .iter()
                .enumerate()
                .filter(|(_, b)| b.schema.has_column(&name))
                .map(|(i, _)| i)
                .collect();
            match hits.len() {
                1 => hits[0],
                0 if Some(name.as_str()) == flavor.rowid_pseudocolumn() && bindings.len() == 1 => 0,
                0 => {
                    err = Some(EngineError::UnknownColumn(name));
                    break;
                }
                _ => {
                    err = Some(EngineError::AmbiguousColumn(name));
                    break;
                }
            }
        };
        if !referenced.contains(&idx) {
            referenced.push(idx);
        }
    }
    if let Some(e) = err {
        return Err(e);
    }
    Ok(referenced)
}

/// Extracts `column = literal` pairs from a conjunct set for one binding.
fn equality_constants(
    conjuncts: &[Expr],
    binding: &Binding,
    flavor: Flavor,
) -> Vec<(String, Value)> {
    let mut out = Vec::new();
    for c in conjuncts {
        let Expr::Binary {
            left,
            op: BinaryOp::Eq,
            right,
        } = c
        else {
            continue;
        };
        let (col, lit) = match (&**left, &**right) {
            (Expr::Column(c), Expr::Literal(l)) => (c, l),
            (Expr::Literal(l), Expr::Column(c)) => (c, l),
            _ => continue,
        };
        let name = col.column.to_ascii_lowercase();
        // Must belong to this binding.
        if let Some(t) = &col.table {
            if t.to_ascii_lowercase() != binding.name {
                continue;
            }
        }
        if binding.schema.has_column(&name) || Some(name.as_str()) == flavor.rowid_pseudocolumn() {
            out.push((name, Value::from_literal(lit)));
        }
    }
    out
}

/// Fetches candidate rows for one binding: a point lookup via the row-id
/// pseudo-column or the full primary key when the conjuncts allow it,
/// otherwise a filtered scan.
fn candidate_rows(
    handle: &TableHandle,
    binding: &Binding,
    local_conjuncts: &[Expr],
    bindings_slice: &[Binding],
    binding_idx: usize,
    flavor: Flavor,
    sim: &SimContext,
) -> Result<Vec<(RowId, Row)>> {
    let table = handle.read();
    let eqs = equality_constants(local_conjuncts, binding, flavor);
    let eq_map: HashMap<&str, &Value> = eqs.iter().map(|(c, v)| (c.as_str(), v)).collect();

    let mut fetched: Option<Vec<(RowId, Row)>> = None;
    // Row-id pseudo-column lookup (used by compensating statements).
    if let Some(pseudo) = flavor.rowid_pseudocolumn() {
        if !binding.schema.has_column(pseudo) {
            if let Some(Value::Int(rid)) = eq_map.get(pseudo).copied() {
                let rid = RowId(*rid as u64);
                fetched = Some(match table.get(rid, sim)? {
                    Some(row) => vec![(rid, row)],
                    None => Vec::new(),
                });
            }
        }
    }
    // Full-primary-key lookup.
    if fetched.is_none() && !binding.schema.primary_key.is_empty() {
        let pk_cols: Vec<&str> = binding
            .schema
            .primary_key
            .iter()
            .map(|&i| binding.schema.columns[i].name.as_str())
            .collect();
        if pk_cols.iter().all(|c| eq_map.contains_key(c)) {
            let mut key_vals = Vec::with_capacity(pk_cols.len());
            for (c, &i) in pk_cols.iter().zip(&binding.schema.primary_key) {
                let v = (*eq_map[c])
                    .clone()
                    .coerce_to(binding.schema.columns[i].ty)?;
                key_vals.push(v);
            }
            fetched = Some(match table.lookup_pk(&key_vals) {
                Some(rid) => match table.get(rid, sim)? {
                    Some(row) => vec![(rid, row)],
                    None => Vec::new(),
                },
                None => Vec::new(),
            });
        }
    }
    // Prefix-index range scan: equality constants covering the first k ≥ 1
    // primary-key columns narrow the candidates without touching every
    // page (the access path behind TPC-C's district-scoped queries).
    if fetched.is_none() && !binding.schema.primary_key.is_empty() {
        let mut prefix_vals = Vec::new();
        for &i in &binding.schema.primary_key {
            let col = &binding.schema.columns[i];
            match eq_map.get(col.name.as_str()) {
                Some(&v) => prefix_vals.push(v.clone().coerce_to(col.ty)?),
                None => break,
            }
        }
        if !prefix_vals.is_empty() {
            let mut rows = Vec::new();
            for rid in table.lookup_pk_prefix(&prefix_vals) {
                if let Some(row) = table.get(rid, sim)? {
                    rows.push((rid, row));
                }
            }
            fetched = Some(rows);
        }
    }
    let rows = match fetched {
        Some(rows) => rows,
        None => {
            let mut rows = Vec::new();
            table.scan(sim, |rid, row| {
                rows.push((rid, row));
                Ok(())
            })?;
            rows
        }
    };
    drop(table);

    // Apply the binding-local predicate to whatever we fetched.
    let mut kept = Vec::with_capacity(rows.len());
    'rows: for (rid, row) in rows {
        let joined: JoinedRow = {
            // Build a joined row with placeholders for other bindings;
            // local conjuncts only touch `binding_idx`.
            let mut j: JoinedRow = bindings_slice
                .iter()
                .map(|b| (RowId(0), Row(vec![Value::Null; b.schema.columns.len()])))
                .collect();
            j[binding_idx] = (rid, row);
            j
        };
        let scope = RowsScope {
            bindings: bindings_slice,
            row: &joined,
            flavor,
        };
        for c in local_conjuncts {
            if !eval(c, &scope)?.is_truthy() {
                continue 'rows;
            }
        }
        let (rid, row) = joined
            .into_iter()
            .nth(binding_idx)
            .ok_or_else(|| EngineError::Internal("join binding index out of range".into()))?;
        kept.push((rid, row));
    }
    Ok(kept)
}

/// Aggregate function names.
fn is_aggregate_fn(name: &str) -> bool {
    matches!(name, "SUM" | "COUNT" | "MIN" | "MAX" | "AVG")
}

/// Evaluates `expr` over a group of joined rows, computing aggregate calls
/// over the whole group and everything else against the group's first row.
fn eval_over_group(
    expr: &Expr,
    bindings: &[Binding],
    group: &[JoinedRow],
    flavor: Flavor,
) -> Result<Value> {
    if !expr.contains_aggregate() {
        let Some(first) = group.first() else {
            return Ok(Value::Null);
        };
        let scope = RowsScope {
            bindings,
            row: first,
            flavor,
        };
        return eval(expr, &scope);
    }
    match expr {
        Expr::Function {
            name,
            args,
            distinct,
            star,
        } if is_aggregate_fn(name) => {
            compute_aggregate(name, args, *distinct, *star, bindings, group, flavor)
        }
        Expr::Binary { left, op, right } => {
            let l = eval_over_group(left, bindings, group, flavor)?;
            let r = eval_over_group(right, bindings, group, flavor)?;
            match op {
                BinaryOp::Add => l.add(&r),
                BinaryOp::Sub => l.sub(&r),
                BinaryOp::Mul => l.mul(&r),
                BinaryOp::Div => l.div(&r),
                BinaryOp::Mod => l.rem(&r),
                BinaryOp::Concat => l.concat(&r),
                other => {
                    let Some(ord) = l.sql_cmp(&r)? else {
                        return Ok(Value::Null);
                    };
                    use std::cmp::Ordering::*;
                    let b = match other {
                        BinaryOp::Eq => ord == Equal,
                        BinaryOp::Neq => ord != Equal,
                        BinaryOp::Lt => ord == Less,
                        BinaryOp::LtEq => ord != Greater,
                        BinaryOp::Gt => ord == Greater,
                        BinaryOp::GtEq => ord != Less,
                        _ => {
                            return Err(EngineError::Unsupported(
                                "logical operator over aggregates".into(),
                            ))
                        }
                    };
                    Ok(Value::Bool(b))
                }
            }
        }
        Expr::Unary { op, expr } => {
            let v = eval_over_group(expr, bindings, group, flavor)?;
            match op {
                resildb_sql::UnaryOp::Neg => v.neg(),
                resildb_sql::UnaryOp::Not => Ok(match v {
                    Value::Null => Value::Null,
                    other => Value::Bool(!other.is_truthy()),
                }),
            }
        }
        other => Err(EngineError::Unsupported(format!(
            "aggregate inside {other:?}"
        ))),
    }
}

fn compute_aggregate(
    name: &str,
    args: &[Expr],
    distinct: bool,
    star: bool,
    bindings: &[Binding],
    group: &[JoinedRow],
    flavor: Flavor,
) -> Result<Value> {
    if star {
        if name != "COUNT" {
            return Err(EngineError::Unsupported(format!("{name}(*)")));
        }
        return Ok(Value::Int(group.len() as i64));
    }
    let [arg] = args else {
        return Err(EngineError::Unsupported(format!(
            "{name} takes exactly one argument"
        )));
    };
    let mut values = Vec::with_capacity(group.len());
    for row in group {
        let scope = RowsScope {
            bindings,
            row,
            flavor,
        };
        let v = eval(arg, &scope)?;
        if !v.is_null() {
            values.push(v);
        }
    }
    if distinct {
        let mut seen = std::collections::HashSet::new();
        values.retain(|v| seen.insert(v.to_sql_literal()));
    }
    match name {
        "COUNT" => Ok(Value::Int(values.len() as i64)),
        "SUM" | "AVG" => {
            if values.is_empty() {
                return Ok(Value::Null);
            }
            let mut acc = Value::Int(0);
            for v in &values {
                acc = acc.add(v)?;
            }
            if name == "AVG" {
                acc.div(&Value::Float(values.len() as f64))
            } else {
                Ok(acc)
            }
        }
        "MIN" | "MAX" => {
            let mut best: Option<Value> = None;
            for v in values {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let ord = v
                            .sql_cmp(&b)?
                            .ok_or_else(|| EngineError::Type("NULL slipped into MIN/MAX".into()))?;
                        let take = if name == "MIN" {
                            ord == std::cmp::Ordering::Less
                        } else {
                            ord == std::cmp::Ordering::Greater
                        };
                        if take {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
        _ => Err(EngineError::Unsupported(format!("aggregate {name}"))),
    }
}

/// Executes a DML/query statement.
pub(crate) fn exec_statement(ctx: &mut StmtCtx<'_>, stmt: &Statement) -> Result<ExecOutcome> {
    match stmt {
        Statement::Select(sel) => exec_select(ctx, sel).map(ExecOutcome::Rows),
        Statement::Insert(ins) => exec_insert(ctx, ins).map(ExecOutcome::Affected),
        Statement::Update(upd) => exec_update(ctx, upd).map(ExecOutcome::Affected),
        Statement::Delete(del) => exec_delete(ctx, del).map(ExecOutcome::Affected),
        other => Err(EngineError::Internal(format!(
            "exec_statement got non-DML {other:?}"
        ))),
    }
}

fn make_bindings(
    ctx: &StmtCtx<'_>,
    from: &[resildb_sql::TableRef],
) -> Result<(Vec<Binding>, Vec<TableHandle>)> {
    let catalog = ctx.catalog.read();
    let mut bindings = Vec::with_capacity(from.len());
    let mut handles = Vec::with_capacity(from.len());
    for tr in from {
        let handle = catalog.get(&tr.name)?;
        let schema = handle.read().schema().clone();
        bindings.push(Binding {
            name: tr.binding_name().to_ascii_lowercase(),
            table: tr.name.to_ascii_lowercase(),
            schema,
        });
        handles.push(handle);
    }
    Ok((bindings, handles))
}

fn exec_select(ctx: &mut StmtCtx<'_>, sel: &Select) -> Result<QueryResult> {
    // FROM-less SELECT: constant evaluation.
    if sel.from.is_empty() {
        let mut columns = Vec::new();
        let mut row = Vec::new();
        for (i, item) in sel.items.iter().enumerate() {
            let SelectItem::Expr { expr, alias } = item else {
                return Err(EngineError::Unsupported("wildcard without FROM".into()));
            };
            columns.push(alias.clone().unwrap_or_else(|| format!("col{}", i + 1)));
            row.push(eval(expr, &EmptyScope)?);
        }
        ctx.sim.charge_statement(1);
        return Ok(QueryResult {
            columns,
            rows: vec![row],
        });
    }

    let (bindings, handles) = make_bindings(ctx, &sel.from)?;

    // Decompose the WHERE clause.
    let mut conjuncts = Vec::new();
    if let Some(w) = &sel.where_clause {
        split_conjuncts(w, &mut conjuncts);
    }
    let mut local: Vec<Vec<Expr>> = vec![Vec::new(); bindings.len()];
    let mut cross: Vec<Expr> = Vec::new();
    for c in conjuncts {
        let refs = conjunct_bindings(&c, &bindings, ctx.flavor)?;
        match refs.as_slice() {
            [one] => local[*one].push(c),
            [] => cross.push(c), // constant predicate
            _ => cross.push(c),
        }
    }

    // Candidate rows per binding.
    let mut candidates: Vec<Vec<(RowId, Row)>> = Vec::with_capacity(bindings.len());
    for (i, (b, h)) in bindings.iter().zip(&handles).enumerate() {
        candidates.push(candidate_rows(
            h, b, &local[i], &bindings, i, ctx.flavor, ctx.sim,
        )?);
    }

    // Join: nested loops with the cross predicates applied as early as each
    // binding is bound (prefix filtering).
    let mut joined: Vec<JoinedRow> = Vec::new();
    {
        let mut stack: JoinedRow = Vec::new();
        join_recurse(
            &bindings,
            &candidates,
            &cross,
            ctx.flavor,
            0,
            &mut stack,
            &mut joined,
        )?;
    }

    // FOR UPDATE locks every participating row.
    if sel.for_update {
        for row in &joined {
            for (idx, (rid, _)) in row.iter().enumerate() {
                ctx.locks
                    .lock_exclusive(ctx.txn, ResourceId::Row(bindings[idx].table.clone(), *rid))?;
            }
        }
    }

    let aggregate_query = !sel.group_by.is_empty()
        || sel.items.iter().any(|i| match i {
            SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
            _ => false,
        });

    // Expand projection items (wildcards become per-column refs).
    let mut out_columns: Vec<String> = Vec::new();
    let mut out_exprs: Vec<Expr> = Vec::new();
    for item in &sel.items {
        match item {
            SelectItem::Wildcard => {
                for b in &bindings {
                    for c in &b.schema.columns {
                        out_columns.push(c.name.clone());
                        out_exprs.push(Expr::Column(ColumnRef::qualified(
                            b.name.clone(),
                            c.name.clone(),
                        )));
                    }
                }
            }
            SelectItem::QualifiedWildcard(t) => {
                let t = t.to_ascii_lowercase();
                let b = bindings
                    .iter()
                    .find(|b| b.name == t)
                    .ok_or_else(|| EngineError::UnknownTable(t.clone()))?;
                for c in &b.schema.columns {
                    out_columns.push(c.name.clone());
                    out_exprs.push(Expr::Column(ColumnRef::qualified(
                        b.name.clone(),
                        c.name.clone(),
                    )));
                }
            }
            SelectItem::Expr { expr, alias } => {
                out_columns.push(alias.clone().unwrap_or_else(|| match expr {
                    Expr::Column(c) => c.column.to_ascii_lowercase(),
                    other => other.to_string().to_ascii_lowercase(),
                }));
                out_exprs.push(expr.clone());
            }
        }
    }

    // Plan-time validation: every projection and sort reference must
    // resolve even when no rows are produced (matching real DBMSs, which
    // reject bad references regardless of data).
    for e in &out_exprs {
        conjunct_bindings(e, &bindings, ctx.flavor)?;
    }
    for ob in &sel.order_by {
        conjunct_bindings(&ob.expr, &bindings, ctx.flavor)?;
    }
    for g in &sel.group_by {
        conjunct_bindings(g, &bindings, ctx.flavor)?;
    }

    // Produce output rows plus sort keys.
    let mut produced: Vec<(Vec<Value>, Vec<Value>)> = Vec::new();
    if aggregate_query {
        // Group rows.
        let mut order: Vec<String> = Vec::new();
        let mut groups: HashMap<String, Vec<JoinedRow>> = HashMap::new();
        if sel.group_by.is_empty() {
            order.push(String::new());
            groups.insert(String::new(), joined);
        } else {
            for row in joined {
                let scope = RowsScope {
                    bindings: &bindings,
                    row: &row,
                    flavor: ctx.flavor,
                };
                let mut key = String::new();
                for g in &sel.group_by {
                    key.push_str(&eval(g, &scope)?.to_sql_literal());
                    key.push('\x1f');
                }
                if !groups.contains_key(&key) {
                    order.push(key.clone());
                }
                groups.entry(key).or_default().push(row);
            }
        }
        for key in order {
            let group = &groups[&key];
            if group.is_empty() && !sel.group_by.is_empty() {
                continue;
            }
            let mut out = Vec::with_capacity(out_exprs.len());
            for e in &out_exprs {
                out.push(eval_over_group(e, &bindings, group, ctx.flavor)?);
            }
            let mut sort_key = Vec::with_capacity(sel.order_by.len());
            for ob in &sel.order_by {
                sort_key.push(eval_over_group(&ob.expr, &bindings, group, ctx.flavor)?);
            }
            produced.push((out, sort_key));
        }
    } else {
        for row in &joined {
            let scope = RowsScope {
                bindings: &bindings,
                row,
                flavor: ctx.flavor,
            };
            let mut out = Vec::with_capacity(out_exprs.len());
            for e in &out_exprs {
                out.push(eval(e, &scope)?);
            }
            let mut sort_key = Vec::with_capacity(sel.order_by.len());
            for ob in &sel.order_by {
                sort_key.push(eval(&ob.expr, &scope)?);
            }
            produced.push((out, sort_key));
        }
    }

    // DISTINCT: deduplicate output rows (first occurrence wins, before
    // ordering, as SQL requires the sort keys to come from the projection).
    if sel.distinct {
        let mut seen = std::collections::HashSet::new();
        produced.retain(|(row, _)| {
            let key: Vec<String> = row.iter().map(Value::to_sql_literal).collect();
            seen.insert(key)
        });
    }

    // ORDER BY.
    if !sel.order_by.is_empty() {
        let descs: Vec<bool> = sel.order_by.iter().map(|o| o.desc).collect();
        produced.sort_by(|a, b| {
            for (i, desc) in descs.iter().enumerate() {
                let ord = a.1[i]
                    .sql_cmp(&b.1[i])
                    .unwrap_or(None)
                    .unwrap_or(std::cmp::Ordering::Equal);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    let mut rows: Vec<Vec<Value>> = produced.into_iter().map(|(r, _)| r).collect();
    if let Some(n) = sel.limit {
        rows.truncate(n as usize);
    }
    ctx.sim.charge_statement(rows.len());
    Ok(QueryResult {
        columns: out_columns,
        rows,
    })
}

#[allow(clippy::too_many_arguments)]
fn join_recurse(
    bindings: &[Binding],
    candidates: &[Vec<(RowId, Row)>],
    cross: &[Expr],
    flavor: Flavor,
    depth: usize,
    stack: &mut JoinedRow,
    out: &mut Vec<JoinedRow>,
) -> Result<()> {
    if depth == bindings.len() {
        out.push(stack.clone());
        return Ok(());
    }
    'cand: for (rid, row) in &candidates[depth] {
        stack.push((*rid, row.clone()));
        // Evaluate any cross predicate whose bindings are all bound. A
        // predicate may error with UnknownColumn only through placeholder
        // rows, which we avoid by checking reference depth.
        if depth + 1 == bindings.len() {
            // All bound: apply every cross predicate.
            let scope = RowsScope {
                bindings,
                row: stack,
                flavor,
            };
            for c in cross {
                if !eval(c, &scope)?.is_truthy() {
                    stack.pop();
                    continue 'cand;
                }
            }
        } else {
            // Partially bound: only apply predicates confined to the bound
            // prefix.
            let scope_row: JoinedRow = (0..bindings.len())
                .map(|i| {
                    stack.get(i).cloned().unwrap_or_else(|| {
                        (
                            RowId(0),
                            Row(vec![Value::Null; bindings[i].schema.columns.len()]),
                        )
                    })
                })
                .collect();
            let scope = RowsScope {
                bindings,
                row: &scope_row,
                flavor,
            };
            for c in cross {
                let refs = conjunct_bindings(c, bindings, flavor)?;
                if refs.iter().all(|&r| r <= depth) && !eval(c, &scope)?.is_truthy() {
                    stack.pop();
                    continue 'cand;
                }
            }
        }
        join_recurse(bindings, candidates, cross, flavor, depth + 1, stack, out)?;
        stack.pop();
    }
    Ok(())
}

fn exec_insert(ctx: &mut StmtCtx<'_>, ins: &resildb_sql::Insert) -> Result<u64> {
    let handle = ctx.catalog.read().get(&ins.table)?;
    let schema = handle.read().schema().clone();
    let mut affected = 0u64;
    for value_row in &ins.rows {
        let row = if ins.columns.is_empty() {
            if value_row.len() != schema.columns.len() {
                return Err(EngineError::Constraint(format!(
                    "INSERT supplies {} values for {} columns",
                    value_row.len(),
                    schema.columns.len()
                )));
            }
            let vals: Result<Vec<Value>> = value_row.iter().map(|e| eval(e, &EmptyScope)).collect();
            Row(vals?)
        } else {
            if value_row.len() != ins.columns.len() {
                return Err(EngineError::Constraint(
                    "VALUES arity differs from column list".into(),
                ));
            }
            let mut vals = vec![Value::Null; schema.columns.len()];
            for (col, e) in ins.columns.iter().zip(value_row) {
                let idx = schema.column_index(col)?;
                vals[idx] = eval(e, &EmptyScope)?;
            }
            Row(vals)
        };
        let (rowid, stored, loc) = handle.write().insert(row, ctx.sim)?;
        ctx.locks
            .lock_exclusive(ctx.txn, ResourceId::Row(schema.name.clone(), rowid))?;
        // Undo entry first: the row is already in the table, so a failed
        // append must still be rolled back by the transaction's undo chain.
        ctx.undo.push(UndoAction::UnInsert {
            table: schema.name.clone(),
            rowid,
        });
        let op = LogOp::Insert {
            table: schema.name.clone(),
            rowid,
            row: stored,
            loc,
        };
        stage_check(&op, ctx.flavor, Some(&schema), ctx.sim)?;
        ctx.redo.push(op);
        affected += 1;
    }
    ctx.sim.charge_statement(affected as usize);
    Ok(affected)
}

/// Shared match-collection for UPDATE/DELETE (single-table).
fn collect_matches(
    ctx: &StmtCtx<'_>,
    handle: &TableHandle,
    binding: &Binding,
    where_clause: &Option<Expr>,
) -> Result<Vec<RowId>> {
    let bindings = std::slice::from_ref(binding);
    let mut conjuncts = Vec::new();
    if let Some(w) = where_clause {
        split_conjuncts(w, &mut conjuncts);
        // Validate references eagerly.
        for c in &conjuncts {
            conjunct_bindings(c, bindings, ctx.flavor)?;
        }
    }
    let rows = candidate_rows(
        handle, binding, &conjuncts, bindings, 0, ctx.flavor, ctx.sim,
    )?;
    Ok(rows.into_iter().map(|(rid, _)| rid).collect())
}

/// Re-checks `where_clause` against the current image of a locked row.
fn still_matches(
    binding: &Binding,
    rid: RowId,
    row: &Row,
    where_clause: &Option<Expr>,
    flavor: Flavor,
) -> Result<bool> {
    let Some(w) = where_clause else {
        return Ok(true);
    };
    let joined: JoinedRow = vec![(rid, row.clone())];
    let scope = RowsScope {
        bindings: std::slice::from_ref(binding),
        row: &joined,
        flavor,
    };
    Ok(eval(w, &scope)?.is_truthy())
}

fn exec_update(ctx: &mut StmtCtx<'_>, upd: &resildb_sql::Update) -> Result<u64> {
    let handle = ctx.catalog.read().get(&upd.table)?;
    let schema = handle.read().schema().clone();
    let binding = Binding {
        name: schema.name.clone(),
        table: schema.name.clone(),
        schema: schema.clone(),
    };
    let matches = collect_matches(ctx, &handle, &binding, &upd.where_clause)?;
    let mut affected = 0u64;
    for rid in matches {
        ctx.locks
            .lock_exclusive(ctx.txn, ResourceId::Row(schema.name.clone(), rid))?;
        let Some(current) = handle.read().get(rid, ctx.sim)? else {
            continue; // deleted concurrently
        };
        if !still_matches(&binding, rid, &current, &upd.where_clause, ctx.flavor)? {
            continue;
        }
        // Evaluate assignments against the pre-update image.
        let joined: JoinedRow = vec![(rid, current.clone())];
        let scope = RowsScope {
            bindings: std::slice::from_ref(&binding),
            row: &joined,
            flavor: ctx.flavor,
        };
        let mut new_row = current.clone();
        for a in &upd.assignments {
            let idx = schema.column_index(&a.column)?;
            new_row.0[idx] = eval(&a.value, &scope)?;
        }
        let Some((before, after, loc)) = handle.write().update(rid, new_row, ctx.sim)? else {
            continue;
        };
        let changed: Vec<usize> = (0..schema.columns.len())
            .filter(|&i| before.0[i] != after.0[i])
            .collect();
        if changed.is_empty() {
            // No column value actually changed: count the row as affected
            // (SQL semantics) but log nothing — real DBMSs do not emit
            // no-op row images either.
            affected += 1;
            continue;
        }
        // Undo entry first so a failed append still rolls the in-place
        // update back.
        ctx.undo.push(UndoAction::UnUpdate {
            table: schema.name.clone(),
            rowid: rid,
            before: before.clone(),
        });
        let op = LogOp::Update {
            table: schema.name.clone(),
            rowid: rid,
            before,
            after,
            changed,
            loc,
        };
        stage_check(&op, ctx.flavor, Some(&schema), ctx.sim)?;
        ctx.redo.push(op);
        affected += 1;
    }
    ctx.sim.charge_statement(affected as usize);
    Ok(affected)
}

fn exec_delete(ctx: &mut StmtCtx<'_>, del: &resildb_sql::Delete) -> Result<u64> {
    let handle = ctx.catalog.read().get(&del.table)?;
    let schema = handle.read().schema().clone();
    let binding = Binding {
        name: schema.name.clone(),
        table: schema.name.clone(),
        schema: schema.clone(),
    };
    let matches = collect_matches(ctx, &handle, &binding, &del.where_clause)?;
    let mut affected = 0u64;
    for rid in matches {
        ctx.locks
            .lock_exclusive(ctx.txn, ResourceId::Row(schema.name.clone(), rid))?;
        let Some(current) = handle.read().get(rid, ctx.sim)? else {
            continue;
        };
        if !still_matches(&binding, rid, &current, &del.where_clause, ctx.flavor)? {
            continue;
        }
        let Some((row, loc)) = handle.write().delete(rid, ctx.sim)? else {
            continue;
        };
        // Undo entry first so a failed append still re-inserts the row.
        ctx.undo.push(UndoAction::ReInsert {
            table: schema.name.clone(),
            rowid: rid,
            row: row.clone(),
            loc,
        });
        let op = LogOp::Delete {
            table: schema.name.clone(),
            rowid: rid,
            row,
            loc,
        };
        stage_check(&op, ctx.flavor, Some(&schema), ctx.sim)?;
        ctx.redo.push(op);
        affected += 1;
    }
    ctx.sim.charge_statement(affected as usize);
    Ok(affected)
}
