//! Write-ahead log with per-row records.
//!
//! Modern DBMSs log row operations individually — one record per affected
//! row, each carrying the operation type, the internal transaction id, the
//! affected table and the physical position (page + offset) of the change
//! (paper §3.3). This module reproduces that model. What *subset* of each
//! record a repair tool can actually see is flavor-specific and exposed via
//! [`crate::introspect`].

use resildb_sim::{failpoints, SimContext};

use crate::error::{EngineError, Result};
use crate::flavor::Flavor;
use crate::row::{Row, RowId};
use crate::schema::TableSchema;
use crate::table::RowLocation;

/// Log sequence number: position of a record in the WAL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lsn(pub u64);

/// Engine-internal transaction id. Distinct from the *proxy* transaction id
/// the tracking layer generates; correlating the two at repair time is part
/// of the paper's §3.3 mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InternalTxnId(pub u64);

impl std::fmt::Display for InternalTxnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "itx:{}", self.0)
    }
}

/// Payload of one log record.
#[derive(Debug, Clone, PartialEq)]
pub enum LogOp {
    /// A row was inserted (full after-image logged by every flavor).
    Insert {
        /// Affected table.
        table: String,
        /// Row id assigned.
        rowid: RowId,
        /// Full row image.
        row: Row,
        /// Physical position at operation time.
        loc: RowLocation,
    },
    /// A row was deleted (full before-image logged by every flavor).
    Delete {
        /// Affected table.
        table: String,
        /// Row id removed.
        rowid: RowId,
        /// Full pre-delete image.
        row: Row,
        /// Physical position at operation time.
        loc: RowLocation,
    },
    /// A row was updated in place.
    Update {
        /// Affected table.
        table: String,
        /// Row id updated.
        rowid: RowId,
        /// Full pre-update image (the engine always retains it; whether a
        /// flavor *exposes* it is an introspection property).
        before: Row,
        /// Full post-update image.
        after: Row,
        /// Indices of columns whose value actually changed.
        changed: Vec<usize>,
        /// Physical position at operation time.
        loc: RowLocation,
    },
    /// DDL: table created (logged so crash recovery can rebuild the
    /// catalog).
    CreateTable {
        /// The new table's schema.
        schema: TableSchema,
    },
    /// DDL: table dropped.
    DropTable {
        /// Dropped table name.
        name: String,
    },
    /// Transaction committed.
    Commit,
    /// Transaction rolled back.
    Abort,
}

impl LogOp {
    /// The table this op touches, if any.
    pub fn table(&self) -> Option<&str> {
        match self {
            LogOp::Insert { table, .. }
            | LogOp::Delete { table, .. }
            | LogOp::Update { table, .. } => Some(table),
            LogOp::CreateTable { schema } => Some(&schema.name),
            LogOp::DropTable { name } => Some(name),
            _ => None,
        }
    }

    /// Bytes this record occupies in `flavor`'s physical log. The Sybase
    /// flavor logs only the modified attributes of an UPDATE; the others
    /// log full before/after images.
    pub fn logged_bytes(&self, flavor: Flavor, schema: Option<&TableSchema>) -> usize {
        const HEADER: usize = 32;
        match self {
            LogOp::Insert { .. } | LogOp::Delete { .. } => {
                HEADER + schema.map_or(64, |s| s.row_width())
            }
            LogOp::Update { changed, .. } => {
                if flavor.logs_update_deltas() {
                    let delta: usize = schema.map_or(changed.len() * 16, |s| {
                        changed
                            .iter()
                            .map(|&i| 3 + s.columns[i].ty.fixed_width())
                            .sum()
                    });
                    HEADER + 2 * delta
                } else {
                    HEADER + 2 * schema.map_or(64, |s| s.row_width())
                }
            }
            LogOp::CreateTable { .. } | LogOp::DropTable { .. } => HEADER + 64,
            LogOp::Commit | LogOp::Abort => HEADER,
        }
    }
}

/// One WAL record.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    /// Position in the log.
    pub lsn: Lsn,
    /// Transaction that produced the record.
    pub txn: InternalTxnId,
    /// Payload.
    pub op: LogOp,
}

/// The in-memory write-ahead log.
#[derive(Debug, Default)]
pub struct Wal {
    records: Vec<LogRecord>,
    next_lsn: u64,
}

/// The statement-time half of a WAL append: runs the `engine.wal_append`
/// failpoint and charges the record's byte cost to `sim`, without touching
/// the shared log. Transactions call this once per staged record while they
/// still hold no WAL lock; the matching [`Wal::publish`] at commit is then
/// charge-free and failure-free, keeping the group-commit critical section
/// short.
///
/// # Errors
///
/// An injected error when the `engine.wal_append` failpoint fires (a full
/// log disk in miniature: nothing is charged and nothing will be written).
pub fn stage_check(
    op: &LogOp,
    flavor: Flavor,
    schema: Option<&TableSchema>,
    sim: &SimContext,
) -> Result<()> {
    let _span = sim
        .telemetry()
        .span(resildb_sim::telemetry::names::ENGINE_WAL_APPEND);
    if sim.fault_check(failpoints::ENGINE_WAL_APPEND).is_some() {
        return Err(EngineError::Injected(failpoints::ENGINE_WAL_APPEND.into()));
    }
    sim.charge_log_append(op.logged_bytes(flavor, schema));
    Ok(())
}

impl Wal {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record, charging its byte cost to `sim` according to the
    /// flavor's logging policy. Returns the assigned LSN, or an injected
    /// error when the `engine.wal_append` failpoint fires (a full log disk
    /// in miniature: nothing is charged and no record is written).
    pub fn append(
        &mut self,
        txn: InternalTxnId,
        op: LogOp,
        flavor: Flavor,
        schema: Option<&TableSchema>,
        sim: &SimContext,
    ) -> Result<Lsn> {
        stage_check(&op, flavor, schema, sim)?;
        Ok(self.publish(txn, op))
    }

    /// Appends an already-staged record (see [`stage_check`]), assigning
    /// the next LSN. Infallible and charge-free: all cost accounting and
    /// fault injection happened at stage time, so publication is just the
    /// sequencing step a group-commit writer performs under its ticket.
    pub fn publish(&mut self, txn: InternalTxnId, op: LogOp) -> Lsn {
        let lsn = Lsn(self.next_lsn);
        self.next_lsn += 1;
        self.records.push(LogRecord { lsn, txn, op });
        lsn
    }

    /// One past the highest assigned LSN — the bound a log force must reach
    /// to cover every published record.
    pub fn end_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// All records in LSN order.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Replaces the log contents with `records` (used when reopening a
    /// database from a durable log); the next LSN continues after the
    /// highest restored one.
    pub fn restore(&mut self, records: Vec<LogRecord>) {
        self.next_lsn = records.iter().map(|r| r.lsn.0 + 1).max().unwrap_or(0);
        self.records = records;
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn schema() -> TableSchema {
        let stmt =
            resildb_sql::parse_statement("CREATE TABLE t (a INTEGER, b VARCHAR(10))").unwrap();
        let resildb_sql::Statement::CreateTable(c) = stmt else {
            unreachable!()
        };
        TableSchema::from_create(&c).unwrap()
    }

    fn loc() -> RowLocation {
        RowLocation {
            page: 0,
            offset: 0,
            len: 10,
        }
    }

    #[test]
    fn lsns_are_sequential() {
        let mut wal = Wal::new();
        let sim = SimContext::free();
        let a = wal
            .append(
                InternalTxnId(1),
                LogOp::Commit,
                Flavor::Postgres,
                None,
                &sim,
            )
            .unwrap();
        let b = wal
            .append(
                InternalTxnId(2),
                LogOp::Commit,
                Flavor::Postgres,
                None,
                &sim,
            )
            .unwrap();
        assert_eq!(a, Lsn(0));
        assert_eq!(b, Lsn(1));
        assert_eq!(wal.len(), 2);
    }

    #[test]
    fn sybase_update_logs_fewer_bytes_than_postgres() {
        let s = schema();
        let op = LogOp::Update {
            table: "t".into(),
            rowid: RowId(1),
            before: Row::new(vec![Value::Int(1), Value::from("a")]),
            after: Row::new(vec![Value::Int(2), Value::from("a")]),
            changed: vec![0],
            loc: loc(),
        };
        let sybase = op.logged_bytes(Flavor::Sybase, Some(&s));
        let postgres = op.logged_bytes(Flavor::Postgres, Some(&s));
        assert!(
            sybase < postgres,
            "delta logging ({sybase}) must beat full images ({postgres})"
        );
    }

    #[test]
    fn appends_charge_log_bytes() {
        let sim = SimContext::new(resildb_sim::CostModel::disk_bound_oltp(), 4);
        let mut wal = Wal::new();
        wal.append(
            InternalTxnId(1),
            LogOp::Insert {
                table: "t".into(),
                rowid: RowId(1),
                row: Row::new(vec![Value::Int(1), Value::from("x")]),
                loc: loc(),
            },
            Flavor::Oracle,
            Some(&schema()),
            &sim,
        )
        .unwrap();
        assert!(sim.stats().log_bytes.get() > 0);
    }

    #[test]
    fn op_table_extraction() {
        assert_eq!(LogOp::Commit.table(), None);
        assert_eq!(LogOp::DropTable { name: "x".into() }.table(), Some("x"));
    }
}
