//! Per-flavor transaction-log introspection interfaces.
//!
//! This is where the paper's portability story gets concrete (§4): the
//! *tracking* side is identical across DBMSs, but every DBMS exposes its
//! transaction log differently, so each flavor gets its own adapter:
//!
//! * [`logminer`] — Oracle's `v$logmnr_contents` view: one row per log
//!   record, carrying ready-made `sql_redo`/`sql_undo` statements (§4.1);
//! * [`waldump`] — a reverse-engineered reader for the PostgreSQL WAL,
//!   exposing full before/after row images (§4.2);
//! * [`dbcc_log`]/[`dbcc_page`] — Sybase's `dbcc log` output, where
//!   `MODIFY` records carry only the changed attributes in raw binary, and
//!   the `dbcc page` command needed to recover full row contents (§4.3).
//!
//! Calling an adapter on the wrong flavor is an error — that mismatch is
//! exactly what forces real repair tools to be partly database-specific.

use crate::db::Database;
use crate::error::{EngineError, Result};
use crate::flavor::Flavor;
use crate::row::{encode_value, Row, RowId};
use crate::table::RowLocation;
use crate::value::Value;
use crate::wal::{InternalTxnId, LogOp, Lsn};

/// One row of the Oracle-flavor `v$logmnr_contents` emulation.
#[derive(Debug, Clone, PartialEq)]
pub struct LogMinerRow {
    /// System change number (our LSN).
    pub scn: Lsn,
    /// Internal transaction id (`XID`).
    pub xid: InternalTxnId,
    /// Operation name: `INSERT`, `DELETE`, `UPDATE`, `COMMIT`, `ROLLBACK`,
    /// `DDL`.
    pub operation: String,
    /// Affected table, when applicable.
    pub table_name: Option<String>,
    /// Row id the operation addressed.
    pub row_id: Option<RowId>,
    /// SQL that re-applies the change.
    pub sql_redo: Option<String>,
    /// SQL that reverses the change.
    pub sql_undo: Option<String>,
}

/// Builds the LogMiner view of the whole log.
///
/// # Errors
///
/// [`EngineError::Unsupported`] unless `db` is the Oracle flavor; lookup
/// errors if a logged table has been dropped.
pub fn logminer(db: &Database) -> Result<Vec<LogMinerRow>> {
    if db.flavor() != Flavor::Oracle {
        return Err(EngineError::Unsupported(format!(
            "LogMiner is an Oracle interface, database is {}",
            db.flavor()
        )));
    }
    let records = db.wal_records();
    let mut out = Vec::with_capacity(records.len());
    for rec in &records {
        let row = match &rec.op {
            LogOp::Insert {
                table, rowid, row, ..
            } => {
                let cols = column_names(db, table)?;
                LogMinerRow {
                    scn: rec.lsn,
                    xid: rec.txn,
                    operation: "INSERT".into(),
                    table_name: Some(table.clone()),
                    row_id: Some(*rowid),
                    sql_redo: Some(insert_sql(table, &cols, row)),
                    sql_undo: Some(format!("DELETE FROM {table} WHERE rowid = {}", rowid.0)),
                }
            }
            LogOp::Delete {
                table, rowid, row, ..
            } => {
                let cols = column_names(db, table)?;
                LogMinerRow {
                    scn: rec.lsn,
                    xid: rec.txn,
                    operation: "DELETE".into(),
                    table_name: Some(table.clone()),
                    row_id: Some(*rowid),
                    sql_redo: Some(format!("DELETE FROM {table} WHERE rowid = {}", rowid.0)),
                    sql_undo: Some(insert_sql(table, &cols, row)),
                }
            }
            LogOp::Update {
                table,
                rowid,
                before,
                after,
                changed,
                ..
            } => {
                let cols = column_names(db, table)?;
                LogMinerRow {
                    scn: rec.lsn,
                    xid: rec.txn,
                    operation: "UPDATE".into(),
                    table_name: Some(table.clone()),
                    row_id: Some(*rowid),
                    sql_redo: Some(update_sql(table, &cols, changed, after, *rowid)),
                    sql_undo: Some(update_sql(table, &cols, changed, before, *rowid)),
                }
            }
            LogOp::Commit => LogMinerRow {
                scn: rec.lsn,
                xid: rec.txn,
                operation: "COMMIT".into(),
                table_name: None,
                row_id: None,
                sql_redo: Some("COMMIT".into()),
                sql_undo: None,
            },
            LogOp::Abort => LogMinerRow {
                scn: rec.lsn,
                xid: rec.txn,
                operation: "ROLLBACK".into(),
                table_name: None,
                row_id: None,
                sql_redo: Some("ROLLBACK".into()),
                sql_undo: None,
            },
            LogOp::CreateTable { schema } => LogMinerRow {
                scn: rec.lsn,
                xid: rec.txn,
                operation: "DDL".into(),
                table_name: Some(schema.name.clone()),
                row_id: None,
                sql_redo: None,
                sql_undo: None,
            },
            LogOp::DropTable { name } => LogMinerRow {
                scn: rec.lsn,
                xid: rec.txn,
                operation: "DDL".into(),
                table_name: Some(name.clone()),
                row_id: None,
                sql_redo: None,
                sql_undo: None,
            },
        };
        out.push(row);
    }
    Ok(out)
}

fn column_names(db: &Database, table: &str) -> Result<Vec<String>> {
    Ok(db.table(table)?.read().schema().column_names())
}

fn insert_sql(table: &str, cols: &[String], row: &Row) -> String {
    let vals: Vec<String> = row.values().iter().map(Value::to_sql_literal).collect();
    format!(
        "INSERT INTO {table} ({}) VALUES ({})",
        cols.join(", "),
        vals.join(", ")
    )
}

fn update_sql(
    table: &str,
    cols: &[String],
    changed: &[usize],
    image: &Row,
    rowid: RowId,
) -> String {
    let sets: Vec<String> = changed
        .iter()
        .map(|&i| format!("{} = {}", cols[i], image.values()[i].to_sql_literal()))
        .collect();
    format!(
        "UPDATE {table} SET {} WHERE rowid = {}",
        sets.join(", "),
        rowid.0
    )
}

/// One record of the PostgreSQL-flavor WAL reader (the paper implemented
/// this as a reverse-engineered plugin; PostgreSQL logs complete before and
/// after images for each row operation).
#[derive(Debug, Clone, PartialEq)]
pub struct WalDumpRecord {
    /// Log position.
    pub lsn: Lsn,
    /// Internal transaction id.
    pub txn: InternalTxnId,
    /// `INSERT` / `DELETE` / `UPDATE` / `COMMIT` / `ABORT` / `DDL`.
    pub op_name: String,
    /// Affected table.
    pub table: Option<String>,
    /// Affected row id (the `ctid` analogue).
    pub rowid: Option<RowId>,
    /// Full before-image (DELETE, UPDATE).
    pub before: Option<Row>,
    /// Full after-image (INSERT, UPDATE).
    pub after: Option<Row>,
    /// Physical location of the change.
    pub loc: Option<RowLocation>,
}

/// Reads the PostgreSQL-flavor WAL.
///
/// # Errors
///
/// [`EngineError::Unsupported`] unless `db` is the Postgres flavor.
pub fn waldump(db: &Database) -> Result<Vec<WalDumpRecord>> {
    if db.flavor() != Flavor::Postgres {
        return Err(EngineError::Unsupported(format!(
            "waldump reads the PostgreSQL WAL, database is {}",
            db.flavor()
        )));
    }
    Ok(db
        .wal_records()
        .iter()
        .map(|rec| match &rec.op {
            LogOp::Insert {
                table,
                rowid,
                row,
                loc,
            } => WalDumpRecord {
                lsn: rec.lsn,
                txn: rec.txn,
                op_name: "INSERT".into(),
                table: Some(table.clone()),
                rowid: Some(*rowid),
                before: None,
                after: Some(row.clone()),
                loc: Some(*loc),
            },
            LogOp::Delete {
                table,
                rowid,
                row,
                loc,
            } => WalDumpRecord {
                lsn: rec.lsn,
                txn: rec.txn,
                op_name: "DELETE".into(),
                table: Some(table.clone()),
                rowid: Some(*rowid),
                before: Some(row.clone()),
                after: None,
                loc: Some(*loc),
            },
            LogOp::Update {
                table,
                rowid,
                before,
                after,
                loc,
                ..
            } => WalDumpRecord {
                lsn: rec.lsn,
                txn: rec.txn,
                op_name: "UPDATE".into(),
                table: Some(table.clone()),
                rowid: Some(*rowid),
                before: Some(before.clone()),
                after: Some(after.clone()),
                loc: Some(*loc),
            },
            LogOp::Commit => WalDumpRecord {
                lsn: rec.lsn,
                txn: rec.txn,
                op_name: "COMMIT".into(),
                table: None,
                rowid: None,
                before: None,
                after: None,
                loc: None,
            },
            LogOp::Abort => WalDumpRecord {
                lsn: rec.lsn,
                txn: rec.txn,
                op_name: "ABORT".into(),
                table: None,
                rowid: None,
                before: None,
                after: None,
                loc: None,
            },
            LogOp::CreateTable { schema } => WalDumpRecord {
                lsn: rec.lsn,
                txn: rec.txn,
                op_name: "DDL".into(),
                table: Some(schema.name.clone()),
                rowid: None,
                before: None,
                after: None,
                loc: None,
            },
            LogOp::DropTable { name } => WalDumpRecord {
                lsn: rec.lsn,
                txn: rec.txn,
                op_name: "DDL".into(),
                table: Some(name.clone()),
                rowid: None,
                before: None,
                after: None,
                loc: None,
            },
        })
        .collect())
}

/// Operation kind in a `dbcc log` record (Sybase names updates `MODIFY`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DbccOp {
    /// Row insert — `bytes` holds the complete row image.
    Insert,
    /// Row delete — `bytes` holds the complete pre-delete image.
    Delete,
    /// In-place update — `bytes` holds only the modified attributes in the
    /// delta encoding described on [`dbcc_log`].
    Modify,
    /// `ENDXACT` commit marker.
    Commit,
    /// `ENDXACT` abort marker.
    Abort,
}

/// One record of the Sybase-flavor `dbcc log` output.
#[derive(Debug, Clone, PartialEq)]
pub struct DbccLogRecord {
    /// Log position.
    pub lsn: Lsn,
    /// Internal transaction id.
    pub txn: InternalTxnId,
    /// Operation kind.
    pub op: DbccOp,
    /// Affected table (empty for commit/abort markers).
    pub table: String,
    /// Page number of the change.
    pub page: u64,
    /// Byte offset within the page *at operation time*.
    pub offset: usize,
    /// Length of the affected row image.
    pub len: usize,
    /// Raw binary payload (see [`dbcc_log`]).
    pub bytes: Vec<u8>,
}

/// Reads the Sybase-flavor transaction log the way `dbcc log` exposes it.
///
/// INSERT/DELETE records carry the complete row image (as stored on the
/// page). `MODIFY` records carry **only the modified attributes**, encoded
/// as a sequence of `[col_index: u16 LE][before value][after value]` groups
/// where each value uses the tagged fixed-width encoding of
/// [`crate::row::encode_value`]. Notably the row-id/identity attribute is
/// absent from MODIFY records unless it was itself modified — reproducing
/// the problem §4.3 of the paper solves with `dbcc page` and offset
/// adjustment.
///
/// # Errors
///
/// [`EngineError::Unsupported`] unless `db` is the Sybase flavor.
pub fn dbcc_log(db: &Database) -> Result<Vec<DbccLogRecord>> {
    if db.flavor() != Flavor::Sybase {
        return Err(EngineError::Unsupported(format!(
            "dbcc log is a Sybase interface, database is {}",
            db.flavor()
        )));
    }
    let records = db.wal_records();
    let mut out = Vec::with_capacity(records.len());
    for rec in &records {
        let dbcc = match &rec.op {
            LogOp::Insert {
                table, row, loc, ..
            } => {
                let schema = db.table(table)?.read().schema().clone();
                DbccLogRecord {
                    lsn: rec.lsn,
                    txn: rec.txn,
                    op: DbccOp::Insert,
                    table: table.clone(),
                    page: loc.page,
                    offset: loc.offset,
                    len: loc.len,
                    bytes: crate::row::encode_row(&schema, row)?,
                }
            }
            LogOp::Delete {
                table, row, loc, ..
            } => {
                let schema = db.table(table)?.read().schema().clone();
                DbccLogRecord {
                    lsn: rec.lsn,
                    txn: rec.txn,
                    op: DbccOp::Delete,
                    table: table.clone(),
                    page: loc.page,
                    offset: loc.offset,
                    len: loc.len,
                    bytes: crate::row::encode_row(&schema, row)?,
                }
            }
            LogOp::Update {
                table,
                before,
                after,
                changed,
                loc,
                ..
            } => {
                let schema = db.table(table)?.read().schema().clone();
                let mut bytes = Vec::new();
                for &i in changed {
                    bytes.extend_from_slice(&(i as u16).to_le_bytes());
                    encode_value(&mut bytes, schema.columns[i].ty, &before.values()[i])?;
                    encode_value(&mut bytes, schema.columns[i].ty, &after.values()[i])?;
                }
                DbccLogRecord {
                    lsn: rec.lsn,
                    txn: rec.txn,
                    op: DbccOp::Modify,
                    table: table.clone(),
                    page: loc.page,
                    offset: loc.offset,
                    len: loc.len,
                    bytes,
                }
            }
            LogOp::Commit => DbccLogRecord {
                lsn: rec.lsn,
                txn: rec.txn,
                op: DbccOp::Commit,
                table: String::new(),
                page: 0,
                offset: 0,
                len: 0,
                bytes: Vec::new(),
            },
            LogOp::Abort => DbccLogRecord {
                lsn: rec.lsn,
                txn: rec.txn,
                op: DbccOp::Abort,
                table: String::new(),
                page: 0,
                offset: 0,
                len: 0,
                bytes: Vec::new(),
            },
            // dbcc log does not render DDL records usefully; skip them.
            LogOp::CreateTable { .. } | LogOp::DropTable { .. } => continue,
        };
        out.push(dbcc);
    }
    Ok(out)
}

/// Reads `len` raw bytes at `offset` of `page` in `table` — the `dbcc page`
/// primitive the §4.3 algorithm uses to recover full row contents.
///
/// # Errors
///
/// [`EngineError::Unsupported`] on non-Sybase flavors, unknown table, or an
/// out-of-bounds range (`EngineError::Internal`).
pub fn dbcc_page(
    db: &Database,
    table: &str,
    page: u64,
    offset: usize,
    len: usize,
) -> Result<Vec<u8>> {
    if db.flavor() != Flavor::Sybase {
        return Err(EngineError::Unsupported(format!(
            "dbcc page is a Sybase interface, database is {}",
            db.flavor()
        )));
    }
    let handle = db.table(table)?;
    let guard = handle.read();
    guard
        .read_page_bytes(page, offset, len)
        .map(<[u8]>::to_vec)
        .ok_or_else(|| {
            EngineError::Internal(format!(
                "dbcc page: range {offset}+{len} out of bounds on {table} page {page}"
            ))
        })
}
