//! Engine error type.

use std::error::Error;
use std::fmt;

/// Errors produced while executing statements against the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// SQL text failed to parse.
    Parse(String),
    /// Referenced table does not exist.
    UnknownTable(String),
    /// Table already exists.
    TableExists(String),
    /// Referenced column does not exist.
    UnknownColumn(String),
    /// A column reference matched more than one table in scope.
    AmbiguousColumn(String),
    /// Value/type mismatch (arithmetic on strings, NOT NULL violation, ...).
    Type(String),
    /// INSERT shape mismatch or other constraint problem.
    Constraint(String),
    /// Duplicate primary key.
    DuplicateKey(String),
    /// Transaction aborted to break a deadlock; the client should retry.
    Deadlock,
    /// Statement issued outside the state it requires (e.g. COMMIT with no
    /// open transaction when auto-commit is off).
    InvalidTransactionState(String),
    /// Feature outside the supported dialect subset.
    Unsupported(String),
    /// Internal invariant violation — a bug in the engine.
    Internal(String),
    /// Failure injected by an armed failpoint (test harness only; names the
    /// failpoint that fired).
    Injected(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(m) => write!(f, "parse error: {m}"),
            EngineError::UnknownTable(t) => write!(f, "unknown table {t}"),
            EngineError::TableExists(t) => write!(f, "table {t} already exists"),
            EngineError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            EngineError::AmbiguousColumn(c) => write!(f, "ambiguous column {c}"),
            EngineError::Type(m) => write!(f, "type error: {m}"),
            EngineError::Constraint(m) => write!(f, "constraint violation: {m}"),
            EngineError::DuplicateKey(m) => write!(f, "duplicate key: {m}"),
            EngineError::Deadlock => write!(f, "transaction aborted due to deadlock"),
            EngineError::InvalidTransactionState(m) => {
                write!(f, "invalid transaction state: {m}")
            }
            EngineError::Unsupported(m) => write!(f, "unsupported: {m}"),
            EngineError::Internal(m) => write!(f, "internal error: {m}"),
            EngineError::Injected(p) => write!(f, "injected fault at failpoint {p}"),
        }
    }
}

impl Error for EngineError {}

impl From<resildb_sql::ParseError> for EngineError {
    fn from(e: resildb_sql::ParseError) -> Self {
        EngineError::Parse(e.to_string())
    }
}

/// Convenience alias used throughout the engine.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(EngineError::UnknownTable("t".into())
            .to_string()
            .contains("t"));
        assert!(EngineError::Deadlock.to_string().contains("deadlock"));
    }

    #[test]
    fn parse_error_converts() {
        let pe = resildb_sql::parse_statement("SELEC 1").unwrap_err();
        let ee: EngineError = pe.into();
        assert!(matches!(ee, EngineError::Parse(_)));
    }
}
