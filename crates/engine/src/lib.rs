//! Relational DBMS substrate for the resildb intrusion-resilience
//! framework.
//!
//! The DSN 2004 paper layers its tracking proxy and repair tool on top of
//! three commercial DBMSs (PostgreSQL, Oracle, Sybase ASE). This crate is
//! the substitute substrate: a single embedded relational engine whose
//! [`Flavor`] parameter reproduces the *differences that mattered to the
//! paper* —
//!
//! * the shape of logged UPDATE records (full before/after images vs.
//!   Sybase's modified-attributes-only `MODIFY` records),
//! * row addressability from SQL (`ctid`/`rowid` pseudo-columns vs. none),
//! * the log-introspection interface ([`introspect::logminer`],
//!   [`introspect::waldump`], [`introspect::dbcc_log`] +
//!   [`introspect::dbcc_page`]),
//! * the physical page behaviour the Sybase repair algorithm depends on
//!   (in-page row migration on delete, no cross-page migration).
//!
//! Everything else — SQL execution, strict-2PL row locking with deadlock
//! detection, per-row write-ahead logging, redo crash recovery — is shared,
//! exactly as the paper's portable framework assumes.
//!
//! Performance costs (page I/O, log appends and forces, CPU, network) are
//! charged to a [`resildb_sim::SimContext`] virtual clock so benchmarks are
//! deterministic.
//!
//! # Examples
//!
//! ```
//! use resildb_engine::{Database, Flavor, Value};
//!
//! # fn main() -> Result<(), resildb_engine::EngineError> {
//! let db = Database::in_memory(Flavor::Oracle);
//! let mut s = db.session();
//! s.execute_sql("CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR(8))")?;
//! s.execute_sql("BEGIN")?;
//! s.execute_sql("INSERT INTO t (id, v) VALUES (1, 'a'), (2, 'b')")?;
//! s.execute_sql("UPDATE t SET v = 'z' WHERE id = 2")?;
//! s.execute_sql("COMMIT")?;
//! let r = s.query("SELECT v FROM t ORDER BY id DESC")?;
//! assert_eq!(r.rows[0][0], Value::from("z"));
//! // Oracle-flavor log introspection produces redo/undo SQL:
//! let miner = resildb_engine::introspect::logminer(&db)?;
//! assert!(miner.iter().any(|m| m.operation == "UPDATE"));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

mod catalog;
mod db;
mod error;
mod exec;
mod expr;
mod flavor;
mod group_commit;
mod lock;
mod page;
mod row;
mod schema;
mod table;
mod value;
mod wal;

pub mod introspect;
pub mod wal_codec;

pub use catalog::{Catalog, TableHandle};
pub use db::{Database, PreparedStatement, Session, StmtCacheStats};
pub use error::{EngineError, Result};
pub use exec::{ExecOutcome, QueryResult, UndoAction};
pub use expr::{eval, like_match, EmptyScope, Scope};
pub use flavor::Flavor;
pub use lock::{LockManager, ResourceId};
pub use page::{Page, Slot, PAGE_SIZE};
pub use row::{decode_row, decode_value, encode_row, encode_value, Row, RowId};
pub use schema::{Column, TableSchema};
pub use table::{RowLocation, Table};
pub use value::{DataType, Value};
pub use wal::{InternalTxnId, LogOp, LogRecord, Lsn, Wal};
