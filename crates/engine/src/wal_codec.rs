//! Binary serialization of the write-ahead log.
//!
//! The engine's WAL lives in memory for speed; this module provides the
//! durable form: a length-delimited binary stream that can be written to a
//! file and replayed later, so a database (including every tracking table
//! and therefore the full repair capability) survives process restarts.
//!
//! Format, per record:
//! `[record_len: u32][crc32: u32][lsn: u64][txn: u64][op_tag: u8]
//! [payload...]`, all little-endian. The CRC (IEEE polynomial) covers the
//! record body, so torn or corrupted records are detected rather than
//! replayed. Row values use per-value tagging; schemas serialize their DDL
//! text and are rebuilt through the normal parser.

use std::io::{Read, Write};

use crate::error::{EngineError, Result};
use crate::row::{Row, RowId};
use crate::schema::TableSchema;
use crate::table::RowLocation;
use crate::value::{DataType, Value};
use crate::wal::{InternalTxnId, LogOp, LogRecord, Lsn};

/// CRC-32 (IEEE 802.3, reflected) over `data` — bitwise implementation,
/// fast enough for log archival and dependency-free.
fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_UPDATE: u8 = 3;
const TAG_CREATE: u8 = 4;
const TAG_DROP: u8 = 5;
const TAG_COMMIT: u8 = 6;
const TAG_ABORT: u8 = 7;

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Int(i) => {
            buf.push(1);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            buf.push(2);
            buf.extend_from_slice(&f.to_le_bytes());
        }
        Value::Str(s) => {
            buf.push(3);
            put_str(buf, s);
        }
        Value::Bool(b) => {
            buf.push(4);
            buf.push(u8::from(*b));
        }
    }
}

fn put_row(buf: &mut Vec<u8>, row: &Row) {
    buf.extend_from_slice(&(row.len() as u32).to_le_bytes());
    for v in row.values() {
        put_value(buf, v);
    }
}

fn put_loc(buf: &mut Vec<u8>, loc: &RowLocation) {
    buf.extend_from_slice(&loc.page.to_le_bytes());
    buf.extend_from_slice(&(loc.offset as u64).to_le_bytes());
    buf.extend_from_slice(&(loc.len as u64).to_le_bytes());
}

/// Serializes one record to its binary form (without the length prefix).
fn encode_record(rec: &LogRecord) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.extend_from_slice(&rec.lsn.0.to_le_bytes());
    buf.extend_from_slice(&rec.txn.0.to_le_bytes());
    match &rec.op {
        LogOp::Insert {
            table,
            rowid,
            row,
            loc,
        } => {
            buf.push(TAG_INSERT);
            put_str(&mut buf, table);
            buf.extend_from_slice(&rowid.0.to_le_bytes());
            put_row(&mut buf, row);
            put_loc(&mut buf, loc);
        }
        LogOp::Delete {
            table,
            rowid,
            row,
            loc,
        } => {
            buf.push(TAG_DELETE);
            put_str(&mut buf, table);
            buf.extend_from_slice(&rowid.0.to_le_bytes());
            put_row(&mut buf, row);
            put_loc(&mut buf, loc);
        }
        LogOp::Update {
            table,
            rowid,
            before,
            after,
            changed,
            loc,
        } => {
            buf.push(TAG_UPDATE);
            put_str(&mut buf, table);
            buf.extend_from_slice(&rowid.0.to_le_bytes());
            put_row(&mut buf, before);
            put_row(&mut buf, after);
            buf.extend_from_slice(&(changed.len() as u32).to_le_bytes());
            for &c in changed {
                buf.extend_from_slice(&(c as u32).to_le_bytes());
            }
            put_loc(&mut buf, loc);
        }
        LogOp::CreateTable { schema } => {
            buf.push(TAG_CREATE);
            put_str(&mut buf, &schema_ddl(schema));
        }
        LogOp::DropTable { name } => {
            buf.push(TAG_DROP);
            put_str(&mut buf, name);
        }
        LogOp::Commit => buf.push(TAG_COMMIT),
        LogOp::Abort => buf.push(TAG_ABORT),
    }
    buf
}

/// Renders a schema back to `CREATE TABLE` DDL (types map onto the storage
/// types losslessly for replay purposes).
fn schema_ddl(schema: &TableSchema) -> String {
    let cols: Vec<String> = schema
        .columns
        .iter()
        .map(|c| {
            let ty = match c.ty {
                DataType::Integer => "INTEGER".to_string(),
                DataType::Float => "FLOAT".to_string(),
                DataType::Varchar(Some(n)) => format!("VARCHAR({n})"),
                DataType::Varchar(None) => "TEXT".to_string(),
            };
            let mut s = format!("{} {ty}", c.name);
            if c.not_null {
                s.push_str(" NOT NULL");
            }
            if c.identity {
                s.push_str(" IDENTITY");
            }
            s
        })
        .collect();
    let mut ddl = format!("CREATE TABLE {} ({}", schema.name, cols.join(", "));
    if !schema.primary_key.is_empty() {
        let pk: Vec<&str> = schema
            .primary_key
            .iter()
            .map(|&i| schema.columns[i].name.as_str())
            .collect();
        ddl.push_str(&format!(", PRIMARY KEY ({})", pk.join(", ")));
    }
    ddl.push(')');
    ddl
}

/// Writes the whole log to `w` in the durable format.
///
/// # Errors
///
/// I/O failures.
pub fn write_wal<W: Write>(records: &[LogRecord], mut w: W) -> Result<()> {
    for rec in records {
        let body = encode_record(rec);
        w.write_all(&(body.len() as u32).to_le_bytes())
            .and_then(|()| w.write_all(&crc32(&body).to_le_bytes()))
            .and_then(|()| w.write_all(&body))
            .map_err(|e| EngineError::Internal(format!("WAL write failed: {e}")))?;
    }
    w.flush()
        .map_err(|e| EngineError::Internal(format!("WAL flush failed: {e}")))?;
    Ok(())
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos + n;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| EngineError::Internal("truncated WAL record".into()))?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N]> {
        self.take(N)?
            .try_into()
            .map_err(|_| EngineError::Internal("WAL slice length mismatch".into()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.array()?))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.array()?))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| EngineError::Internal("invalid UTF-8 in WAL".into()))
    }

    fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Int(self.i64()?),
            2 => Value::Float(self.f64()?),
            3 => Value::Str(self.str()?),
            4 => Value::Bool(self.u8()? != 0),
            t => return Err(EngineError::Internal(format!("bad value tag {t} in WAL"))),
        })
    }

    fn row(&mut self) -> Result<Row> {
        let n = self.u32()? as usize;
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(self.value()?);
        }
        Ok(Row(values))
    }

    fn loc(&mut self) -> Result<RowLocation> {
        Ok(RowLocation {
            page: self.u64()?,
            offset: self.u64()? as usize,
            len: self.u64()? as usize,
        })
    }
}

fn decode_record(body: &[u8]) -> Result<LogRecord> {
    let mut c = Cursor { buf: body, pos: 0 };
    let lsn = Lsn(c.u64()?);
    let txn = InternalTxnId(c.u64()?);
    let op = match c.u8()? {
        TAG_INSERT => LogOp::Insert {
            table: c.str()?,
            rowid: RowId(c.u64()?),
            row: c.row()?,
            loc: c.loc()?,
        },
        TAG_DELETE => LogOp::Delete {
            table: c.str()?,
            rowid: RowId(c.u64()?),
            row: c.row()?,
            loc: c.loc()?,
        },
        TAG_UPDATE => {
            let table = c.str()?;
            let rowid = RowId(c.u64()?);
            let before = c.row()?;
            let after = c.row()?;
            let n = c.u32()? as usize;
            let mut changed = Vec::with_capacity(n);
            for _ in 0..n {
                changed.push(c.u32()? as usize);
            }
            LogOp::Update {
                table,
                rowid,
                before,
                after,
                changed,
                loc: c.loc()?,
            }
        }
        TAG_CREATE => {
            let ddl = c.str()?;
            let stmt = resildb_sql::parse_statement(&ddl)
                .map_err(|e| EngineError::Internal(format!("bad DDL in WAL: {e}")))?;
            let resildb_sql::Statement::CreateTable(ct) = stmt else {
                return Err(EngineError::Internal("non-DDL in CREATE record".into()));
            };
            LogOp::CreateTable {
                schema: TableSchema::from_create(&ct)?,
            }
        }
        TAG_DROP => LogOp::DropTable { name: c.str()? },
        TAG_COMMIT => LogOp::Commit,
        TAG_ABORT => LogOp::Abort,
        t => return Err(EngineError::Internal(format!("bad op tag {t} in WAL"))),
    };
    Ok(LogRecord { lsn, txn, op })
}

/// Reads a durable log previously produced by [`write_wal`].
///
/// # Errors
///
/// I/O failures or a corrupt/truncated stream.
pub fn read_wal<R: Read>(mut r: R) -> Result<Vec<LogRecord>> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)
        .map_err(|e| EngineError::Internal(format!("WAL read failed: {e}")))?;
    let mut records = Vec::new();
    let mut pos = 0;
    while pos < bytes.len() {
        let len_bytes: [u8; 4] = bytes
            .get(pos..pos + 4)
            .ok_or_else(|| EngineError::Internal("truncated WAL length".into()))?
            .try_into()
            .map_err(|_| EngineError::Internal("truncated WAL length".into()))?;
        let len = u32::from_le_bytes(len_bytes) as usize;
        pos += 4;
        let crc_bytes: [u8; 4] = bytes
            .get(pos..pos + 4)
            .ok_or_else(|| EngineError::Internal("truncated WAL checksum".into()))?
            .try_into()
            .map_err(|_| EngineError::Internal("truncated WAL checksum".into()))?;
        let expected_crc = u32::from_le_bytes(crc_bytes);
        pos += 4;
        let body = bytes
            .get(pos..pos + len)
            .ok_or_else(|| EngineError::Internal("truncated WAL body".into()))?;
        pos += len;
        if crc32(body) != expected_crc {
            return Err(EngineError::Internal(
                "WAL record checksum mismatch (corrupt log)".into(),
            ));
        }
        records.push(decode_record(body)?);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Database, Flavor};

    fn sample_records() -> Vec<LogRecord> {
        let db = Database::in_memory(Flavor::Postgres);
        let mut s = db.session();
        s.execute_sql(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR(8), f FLOAT, rid INTEGER IDENTITY)",
        )
        .unwrap();
        s.execute_sql("INSERT INTO t (id, v, f) VALUES (1, 'a', 1.5), (2, NULL, -2.0)")
            .unwrap();
        s.execute_sql("UPDATE t SET v = 'z' WHERE id = 1").unwrap();
        s.execute_sql("DELETE FROM t WHERE id = 2").unwrap();
        s.execute_sql("BEGIN").unwrap();
        s.execute_sql("INSERT INTO t (id, v, f) VALUES (3, 'x', 0.0)")
            .unwrap();
        s.execute_sql("ROLLBACK").unwrap();
        db.wal_records()
    }

    #[test]
    fn round_trips_every_record_kind() {
        let records = sample_records();
        assert!(records.len() >= 8);
        let mut buf = Vec::new();
        write_wal(&records, &mut buf).unwrap();
        let decoded = read_wal(&buf[..]).unwrap();
        assert_eq!(records, decoded);
    }

    #[test]
    fn truncated_stream_is_an_error_not_a_panic() {
        let records = sample_records();
        let mut buf = Vec::new();
        write_wal(&records, &mut buf).unwrap();
        for cut in [1, 3, buf.len() / 2, buf.len() - 1] {
            assert!(read_wal(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn empty_stream_is_an_empty_log() {
        assert_eq!(read_wal(&[][..]).unwrap(), Vec::new());
    }

    #[test]
    fn any_single_flipped_byte_is_detected() {
        let records = sample_records();
        let mut clean = Vec::new();
        write_wal(&records, &mut clean).unwrap();
        // Flip each byte in turn (sampled for speed) — every corruption
        // must surface as an error or decode to different records, never
        // silently reproduce the original log.
        for i in (0..clean.len()).step_by(7) {
            let mut buf = clean.clone();
            buf[i] ^= 0xA5;
            match read_wal(&buf[..]) {
                Err(_) => {}
                Ok(decoded) => assert_ne!(decoded, records, "undetected corruption at byte {i}"),
            }
        }
    }

    #[test]
    fn crc_reference_vector() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn schema_ddl_round_trips_identity_and_pk() {
        let db = Database::in_memory(Flavor::Sybase);
        let mut s = db.session();
        s.execute_sql(
            "CREATE TABLE t (a INTEGER NOT NULL, b VARCHAR(4), rid INTEGER IDENTITY, \
             PRIMARY KEY (a))",
        )
        .unwrap();
        let records = db.wal_records();
        let mut buf = Vec::new();
        write_wal(&records, &mut buf).unwrap();
        let decoded = read_wal(&buf[..]).unwrap();
        let LogOp::CreateTable { schema } = &decoded[0].op else {
            panic!("first record should be the CREATE");
        };
        assert_eq!(schema.primary_key, vec![0]);
        assert_eq!(schema.identity_column(), Some(2));
        assert!(schema.columns[0].not_null);
    }
}
