//! Scalar expression evaluation with SQL semantics.

use resildb_sql::{BinaryOp, ColumnRef, Expr, UnaryOp};

use crate::error::{EngineError, Result};
use crate::value::Value;

/// Resolves column references during evaluation.
pub trait Scope {
    /// Produces the value of `col` in the current row context.
    ///
    /// # Errors
    ///
    /// Unknown or ambiguous columns.
    fn resolve(&self, col: &ColumnRef) -> Result<Value>;
}

/// A scope with no columns — evaluating any column reference fails. Used
/// for `INSERT ... VALUES` expressions and other constant contexts.
#[derive(Debug, Clone, Copy, Default)]
pub struct EmptyScope;

impl Scope for EmptyScope {
    fn resolve(&self, col: &ColumnRef) -> Result<Value> {
        Err(EngineError::UnknownColumn(format!(
            "{col} (no columns in scope)"
        )))
    }
}

/// Evaluates `expr` in `scope`.
///
/// Aggregate function calls are rejected here; the executor evaluates them
/// over row groups before scalar evaluation (see `exec`).
///
/// # Errors
///
/// Type errors, unknown columns, unsupported functions.
pub fn eval(expr: &Expr, scope: &dyn Scope) -> Result<Value> {
    match expr {
        Expr::Literal(l) => Ok(Value::from_literal(l)),
        Expr::Param(idx) => Err(EngineError::Unsupported(format!(
            "unbound parameter ?{idx} (parameters must be bound before execution)"
        ))),
        Expr::Column(c) => scope.resolve(c),
        Expr::Unary { op, expr } => {
            let v = eval(expr, scope)?;
            match op {
                UnaryOp::Neg => v.neg(),
                UnaryOp::Not => Ok(match v {
                    Value::Null => Value::Null,
                    other => Value::Bool(!other.is_truthy()),
                }),
            }
        }
        Expr::Binary { left, op, right } => eval_binary(left, *op, right, scope),
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, scope)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let needle = eval(expr, scope)?;
            if needle.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let v = eval(item, scope)?;
                if v.is_null() {
                    saw_null = true;
                    continue;
                }
                if needle.sql_cmp(&v)? == Some(std::cmp::Ordering::Equal) {
                    return Ok(Value::Bool(!*negated));
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Bool(*negated))
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval(expr, scope)?;
            let lo = eval(low, scope)?;
            let hi = eval(high, scope)?;
            let (Some(cl), Some(ch)) = (v.sql_cmp(&lo)?, v.sql_cmp(&hi)?) else {
                return Ok(Value::Null);
            };
            let inside = cl != std::cmp::Ordering::Less && ch != std::cmp::Ordering::Greater;
            Ok(Value::Bool(inside != *negated))
        }
        Expr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval(expr, scope)?;
            let p = eval(pattern, scope)?;
            match (&v, &p) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::Str(s), Value::Str(pat)) => Ok(Value::Bool(like_match(s, pat) != *negated)),
                _ => Err(EngineError::Type(format!(
                    "LIKE requires strings, got {v:?} LIKE {p:?}"
                ))),
            }
        }
        Expr::Function { name, .. } => Err(EngineError::Unsupported(format!(
            "function {name} in scalar context"
        ))),
    }
}

fn eval_binary(left: &Expr, op: BinaryOp, right: &Expr, scope: &dyn Scope) -> Result<Value> {
    // Short-circuit logic with SQL three-valued semantics.
    match op {
        BinaryOp::And => {
            let l = eval(left, scope)?;
            if !l.is_null() && !l.is_truthy() {
                return Ok(Value::Bool(false));
            }
            let r = eval(right, scope)?;
            if !r.is_null() && !r.is_truthy() {
                return Ok(Value::Bool(false));
            }
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Bool(true))
        }
        BinaryOp::Or => {
            let l = eval(left, scope)?;
            if !l.is_null() && l.is_truthy() {
                return Ok(Value::Bool(true));
            }
            let r = eval(right, scope)?;
            if !r.is_null() && r.is_truthy() {
                return Ok(Value::Bool(true));
            }
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            Ok(Value::Bool(false))
        }
        _ => {
            let l = eval(left, scope)?;
            let r = eval(right, scope)?;
            match op {
                BinaryOp::Add => l.add(&r),
                BinaryOp::Sub => l.sub(&r),
                BinaryOp::Mul => l.mul(&r),
                BinaryOp::Div => l.div(&r),
                BinaryOp::Mod => l.rem(&r),
                BinaryOp::Concat => l.concat(&r),
                BinaryOp::Eq
                | BinaryOp::Neq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq => {
                    let Some(ord) = l.sql_cmp(&r)? else {
                        return Ok(Value::Null);
                    };
                    use std::cmp::Ordering::*;
                    let b = match op {
                        BinaryOp::Eq => ord == Equal,
                        BinaryOp::Neq => ord != Equal,
                        BinaryOp::Lt => ord == Less,
                        BinaryOp::LtEq => ord != Greater,
                        BinaryOp::Gt => ord == Greater,
                        BinaryOp::GtEq => ord != Less,
                        _ => unreachable!(),
                    };
                    Ok(Value::Bool(b))
                }
                BinaryOp::And | BinaryOp::Or => unreachable!("handled above"),
            }
        }
    }
}

/// SQL `LIKE` matching: `%` matches any run, `_` matches one character.
pub fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // Try consuming 0..=len characters.
                (0..=s.len()).any(|k| rec(&s[k..], &p[1..]))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(&c) => s.first() == Some(&c) && rec(&s[1..], &p[1..]),
        }
    }
    let sc: Vec<char> = s.chars().collect();
    let pc: Vec<char> = pattern.chars().collect();
    rec(&sc, &pc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use resildb_sql::{parse_statement, SelectItem, Statement};

    /// Evaluates the first projection of `SELECT <expr>` in an empty scope.
    fn eval_const(expr_sql: &str) -> Result<Value> {
        let stmt = parse_statement(&format!("SELECT {expr_sql}")).unwrap();
        let Statement::Select(sel) = stmt else {
            unreachable!()
        };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else {
            unreachable!()
        };
        eval(expr, &EmptyScope)
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval_const("1 + 2 * 3").unwrap(), Value::Int(7));
        assert_eq!(eval_const("(1 + 2) * 3").unwrap(), Value::Int(9));
        assert_eq!(eval_const("7 % 3").unwrap(), Value::Int(1));
        assert_eq!(eval_const("1 / 2").unwrap(), Value::Int(0));
        assert_eq!(eval_const("1.0 / 2").unwrap(), Value::Float(0.5));
    }

    #[test]
    fn comparisons_and_logic() {
        assert_eq!(
            eval_const("1 < 2 AND 'a' = 'a'").unwrap(),
            Value::Bool(true)
        );
        assert_eq!(eval_const("1 > 2 OR FALSE").unwrap(), Value::Bool(false));
        assert_eq!(eval_const("NOT 1 = 2").unwrap(), Value::Bool(true));
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(eval_const("NULL AND TRUE").unwrap(), Value::Null);
        assert_eq!(eval_const("NULL AND FALSE").unwrap(), Value::Bool(false));
        assert_eq!(eval_const("NULL OR TRUE").unwrap(), Value::Bool(true));
        assert_eq!(eval_const("NULL OR FALSE").unwrap(), Value::Null);
        assert_eq!(eval_const("NOT NULL").unwrap(), Value::Null);
        assert_eq!(eval_const("NULL = NULL").unwrap(), Value::Null);
        assert_eq!(eval_const("NULL IS NULL").unwrap(), Value::Bool(true));
        assert_eq!(eval_const("1 IS NOT NULL").unwrap(), Value::Bool(true));
    }

    #[test]
    fn in_list_semantics() {
        assert_eq!(eval_const("2 IN (1, 2, 3)").unwrap(), Value::Bool(true));
        assert_eq!(eval_const("5 IN (1, 2, 3)").unwrap(), Value::Bool(false));
        assert_eq!(eval_const("5 NOT IN (1, 2)").unwrap(), Value::Bool(true));
        // NULL in the list makes a non-match UNKNOWN, not false.
        assert_eq!(eval_const("5 IN (1, NULL)").unwrap(), Value::Null);
        assert_eq!(eval_const("1 IN (1, NULL)").unwrap(), Value::Bool(true));
    }

    #[test]
    fn between_semantics() {
        assert_eq!(eval_const("2 BETWEEN 1 AND 3").unwrap(), Value::Bool(true));
        assert_eq!(eval_const("0 BETWEEN 1 AND 3").unwrap(), Value::Bool(false));
        assert_eq!(
            eval_const("0 NOT BETWEEN 1 AND 3").unwrap(),
            Value::Bool(true)
        );
        assert_eq!(eval_const("NULL BETWEEN 1 AND 3").unwrap(), Value::Null);
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("BARBARBAR", "BAR%"));
        assert!(like_match("abc", "a_c"));
        assert!(like_match("abc", "%"));
        assert!(like_match("", "%"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("a%c", "a%c"));
        assert!(like_match("xayc", "x%c"));
        assert_eq!(
            eval_const("'OUGHT' LIKE '%GH%'").unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn concat() {
        assert_eq!(eval_const("'a' || 1 || '-'").unwrap(), Value::from("a1-"));
    }

    #[test]
    fn unknown_column_in_empty_scope() {
        assert!(matches!(
            eval_const("some_col + 1"),
            Err(EngineError::UnknownColumn(_))
        ));
    }

    #[test]
    fn aggregate_in_scalar_context_is_unsupported() {
        assert!(matches!(
            eval_const("SUM(1)"),
            Err(EngineError::Unsupported(_))
        ));
    }
}
