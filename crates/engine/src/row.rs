//! Rows, row identifiers and the binary row encoding used by the simulated
//! page layout and the Sybase-flavor `dbcc` introspection.

use std::fmt;

use crate::error::{EngineError, Result};
use crate::schema::TableSchema;
use crate::value::{DataType, Value};

/// Engine-internal identifier of a stored row.
///
/// Every flavor has row identity internally; whether it is *exposed to SQL*
/// (Oracle `ROWID`, PostgreSQL `ctid`) is a [`crate::Flavor`] capability —
/// the Sybase-like flavor hides it, which is why the paper's proxy injects
/// an `IDENTITY` column there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u64);

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rid:{}", self.0)
    }
}

/// A stored row: one [`Value`] per schema column.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Row(pub Vec<Value>);

impl Row {
    /// Creates a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row(values)
    }

    /// The values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the row has no columns.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The value at `idx`.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.0.get(idx)
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Row(iter.into_iter().collect())
    }
}

/// Encodes a row into the fixed-width binary page format.
///
/// Layout: a 4-byte row header (tag byte + 3 reserved), then per column a
/// 1-byte kind tag followed by the fixed-width payload from
/// [`DataType::fixed_width`]. VARCHAR payloads are length-prefixed and
/// zero-padded to the declared width.
///
/// # Errors
///
/// Returns an error when the row's arity differs from the schema's or a
/// string exceeds its declared width.
pub fn encode_row(schema: &TableSchema, row: &Row) -> Result<Vec<u8>> {
    if row.len() != schema.columns.len() {
        return Err(EngineError::Internal(format!(
            "row arity {} does not match schema {} of {}",
            row.len(),
            schema.columns.len(),
            schema.name
        )));
    }
    let mut out = Vec::with_capacity(schema.row_width());
    // 4-byte row header: magic tag + reserved bytes.
    out.extend_from_slice(&[0xA0, 0, 0, 0]);
    for (col, v) in schema.columns.iter().zip(row.values()) {
        encode_value(&mut out, col.ty, v)?;
    }
    Ok(out)
}

/// Encodes a single value into its tagged fixed-width form (1 tag byte +
/// [`DataType::fixed_width`] payload bytes). Exposed for the Sybase-flavor
/// `dbcc log` delta encoding, which repair tools must decode.
///
/// # Errors
///
/// Type mismatch or over-long string.
pub fn encode_value(out: &mut Vec<u8>, ty: DataType, v: &Value) -> Result<()> {
    match (ty, v) {
        (_, Value::Null) => {
            out.push(0);
            out.extend(std::iter::repeat_n(0, ty.fixed_width()));
            Ok(())
        }
        (DataType::Integer, Value::Int(x)) => {
            out.push(1);
            out.extend_from_slice(&x.to_le_bytes());
            Ok(())
        }
        (DataType::Float, Value::Float(x)) => {
            out.push(2);
            out.extend_from_slice(&x.to_le_bytes());
            Ok(())
        }
        (DataType::Varchar(_), Value::Str(s)) => {
            let width = ty.fixed_width();
            let bytes = s.as_bytes();
            if bytes.len() > width - 1 {
                return Err(EngineError::Type(format!(
                    "string too long for page slot ({} > {})",
                    bytes.len(),
                    width - 1
                )));
            }
            out.push(3);
            out.push(bytes.len() as u8);
            out.extend_from_slice(bytes);
            out.extend(std::iter::repeat_n(0, width - 1 - bytes.len()));
            Ok(())
        }
        (ty, v) => Err(EngineError::Type(format!(
            "cannot encode {v:?} into {ty} slot"
        ))),
    }
}

/// Decodes one tagged value of type `ty` from the front of `bytes`,
/// returning the value and the number of bytes consumed.
///
/// # Errors
///
/// Short buffer or malformed tag.
pub fn decode_value(bytes: &[u8], ty: DataType) -> Result<(Value, usize)> {
    let width = ty.fixed_width();
    if bytes.len() < 1 + width {
        return Err(EngineError::Internal(format!(
            "value image too short: {} < {}",
            bytes.len(),
            1 + width
        )));
    }
    let tag = bytes[0];
    let payload = &bytes[1..1 + width];
    let v = match (tag, ty) {
        (0, _) => Value::Null,
        (1, DataType::Integer) => {
            let mut b = [0u8; 8];
            b.copy_from_slice(&payload[..8]);
            Value::Int(i64::from_le_bytes(b))
        }
        (2, DataType::Float) => {
            let mut b = [0u8; 8];
            b.copy_from_slice(&payload[..8]);
            Value::Float(f64::from_le_bytes(b))
        }
        (3, DataType::Varchar(_)) => {
            let len = payload[0] as usize;
            let s = std::str::from_utf8(&payload[1..1 + len])
                .map_err(|_| EngineError::Internal("invalid UTF-8 in value image".into()))?;
            Value::Str(s.to_string())
        }
        (tag, ty) => {
            return Err(EngineError::Internal(format!(
                "bad value tag {tag} for {ty}"
            )))
        }
    };
    Ok((v, 1 + width))
}

/// Decodes a row previously produced by [`encode_row`].
///
/// # Errors
///
/// Returns an error when the byte buffer is shorter than the schema's row
/// width or contains malformed tags — which, during repair, indicates the
/// reconstructed page offset was wrong.
pub fn decode_row(schema: &TableSchema, bytes: &[u8]) -> Result<Row> {
    if bytes.len() < schema.row_width() {
        return Err(EngineError::Internal(format!(
            "row image too short: {} < {}",
            bytes.len(),
            schema.row_width()
        )));
    }
    let mut pos = 4;
    let mut values = Vec::with_capacity(schema.columns.len());
    for col in &schema.columns {
        let width = col.ty.fixed_width();
        let tag = bytes[pos];
        let payload = &bytes[pos + 1..pos + 1 + width];
        let v = match (tag, col.ty) {
            (0, _) => Value::Null,
            (1, DataType::Integer) => {
                let mut b = [0u8; 8];
                b.copy_from_slice(&payload[..8]);
                Value::Int(i64::from_le_bytes(b))
            }
            (2, DataType::Float) => {
                let mut b = [0u8; 8];
                b.copy_from_slice(&payload[..8]);
                Value::Float(f64::from_le_bytes(b))
            }
            (3, DataType::Varchar(_)) => {
                let len = payload[0] as usize;
                let s = std::str::from_utf8(&payload[1..1 + len])
                    .map_err(|_| EngineError::Internal("invalid UTF-8 in row image".into()))?;
                Value::Str(s.to_string())
            }
            (tag, ty) => {
                return Err(EngineError::Internal(format!(
                    "bad value tag {tag} for {ty}"
                )))
            }
        };
        values.push(v);
        pos += 1 + width;
    }
    Ok(Row(values))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> TableSchema {
        let stmt =
            resildb_sql::parse_statement("CREATE TABLE t (a INTEGER, b VARCHAR(6), c FLOAT)")
                .unwrap();
        let resildb_sql::Statement::CreateTable(c) = stmt else {
            unreachable!()
        };
        TableSchema::from_create(&c).unwrap()
    }

    #[test]
    fn encode_decode_round_trip() {
        let s = schema();
        let row = Row::new(vec![Value::Int(-7), Value::from("hi"), Value::Float(2.5)]);
        let bytes = encode_row(&s, &row).unwrap();
        assert_eq!(decode_row(&s, &bytes).unwrap(), row);
    }

    #[test]
    fn nulls_round_trip() {
        let s = schema();
        let row = Row::new(vec![Value::Null, Value::Null, Value::Null]);
        let bytes = encode_row(&s, &row).unwrap();
        assert_eq!(decode_row(&s, &bytes).unwrap(), row);
    }

    #[test]
    fn arity_mismatch_is_error() {
        let s = schema();
        assert!(encode_row(&s, &Row::new(vec![Value::Int(1)])).is_err());
    }

    #[test]
    fn overlong_string_is_error() {
        let s = schema();
        let row = Row::new(vec![
            Value::Int(1),
            Value::from("toolongstring"),
            Value::Float(0.0),
        ]);
        assert!(encode_row(&s, &row).is_err());
    }

    #[test]
    fn short_buffer_is_error() {
        let s = schema();
        assert!(decode_row(&s, &[0; 4]).is_err());
    }

    #[test]
    fn rowid_display() {
        assert_eq!(RowId(42).to_string(), "rid:42");
    }
}
