//! Table schemas.

use crate::error::{EngineError, Result};
use crate::value::DataType;

/// One column of a table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (stored lower-case; lookups are case-insensitive).
    pub name: String,
    /// Storage type.
    pub ty: DataType,
    /// `NOT NULL` constraint.
    pub not_null: bool,
    /// Auto-numbering identity column (Sybase-style surrogate row id).
    pub identity: bool,
}

impl Column {
    /// Creates a plain nullable column.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Self {
            name: name.into().to_ascii_lowercase(),
            ty,
            not_null: false,
            identity: false,
        }
    }
}

/// Schema of one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name (lower-cased).
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<Column>,
    /// Indices (into `columns`) of the primary-key columns, in key order.
    pub primary_key: Vec<usize>,
}

impl TableSchema {
    /// Builds a schema from a parsed `CREATE TABLE`.
    ///
    /// # Errors
    ///
    /// Returns an error on duplicate column names or a primary-key
    /// reference to a missing column.
    pub fn from_create(stmt: &resildb_sql::CreateTable) -> Result<Self> {
        let mut columns = Vec::with_capacity(stmt.columns.len());
        let mut pk_from_cols = Vec::new();
        for (i, c) in stmt.columns.iter().enumerate() {
            let name = c.name.to_ascii_lowercase();
            if columns
                .iter()
                .any(|existing: &Column| existing.name == name)
            {
                return Err(EngineError::Constraint(format!(
                    "duplicate column {name} in table {}",
                    stmt.name
                )));
            }
            columns.push(Column {
                name,
                ty: DataType::from_type_name(&c.ty),
                not_null: c.not_null || c.primary_key,
                identity: c.identity,
            });
            if c.primary_key {
                pk_from_cols.push(i);
            }
        }
        let mut schema = TableSchema {
            name: stmt.name.to_ascii_lowercase(),
            columns,
            primary_key: pk_from_cols,
        };
        if !stmt.primary_key.is_empty() {
            let mut pk = Vec::with_capacity(stmt.primary_key.len());
            for col in &stmt.primary_key {
                pk.push(schema.column_index(col)?);
            }
            schema.primary_key = pk;
        }
        for &i in &schema.primary_key {
            schema.columns[i].not_null = true;
        }
        Ok(schema)
    }

    /// Index of `name` (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownColumn`] when absent.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns
            .iter()
            .position(|c| c.name == lower)
            .ok_or_else(|| EngineError::UnknownColumn(format!("{}.{name}", self.name)))
    }

    /// Whether the table declares a column called `name`.
    pub fn has_column(&self, name: &str) -> bool {
        self.column_index(name).is_ok()
    }

    /// Names of all columns, in order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// The fixed on-page row width in bytes (sum of column widths plus a
    /// small per-row header), used by the page layout and log-size
    /// accounting.
    pub fn row_width(&self) -> usize {
        // 4-byte row header, then per column a 1-byte kind tag plus the
        // type's fixed payload width (see `resildb_engine::row::encode_row`).
        4 + self
            .columns
            .iter()
            .map(|c| 1 + c.ty.fixed_width())
            .sum::<usize>()
    }

    /// Index of the identity column, if any.
    pub fn identity_column(&self) -> Option<usize> {
        self.columns.iter().position(|c| c.identity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema(sql: &str) -> TableSchema {
        let stmt = resildb_sql::parse_statement(sql).unwrap();
        let resildb_sql::Statement::CreateTable(c) = stmt else {
            panic!("not a create table");
        };
        TableSchema::from_create(&c).unwrap()
    }

    #[test]
    fn builds_from_create_with_table_level_pk() {
        let s = schema("CREATE TABLE t (A INTEGER, b VARCHAR(4), PRIMARY KEY (b, a))");
        assert_eq!(s.primary_key, vec![1, 0]);
        assert!(s.columns[0].not_null && s.columns[1].not_null);
        assert_eq!(s.column_index("a").unwrap(), 0);
    }

    #[test]
    fn column_level_pk_and_identity() {
        let s = schema("CREATE TABLE t (id INTEGER PRIMARY KEY, rid INTEGER IDENTITY)");
        assert_eq!(s.primary_key, vec![0]);
        assert_eq!(s.identity_column(), Some(1));
    }

    #[test]
    fn duplicate_column_is_error() {
        let stmt = resildb_sql::parse_statement("CREATE TABLE t (a INTEGER, A FLOAT)").unwrap();
        let resildb_sql::Statement::CreateTable(c) = stmt else {
            unreachable!()
        };
        assert!(TableSchema::from_create(&c).is_err());
    }

    #[test]
    fn pk_referencing_missing_column_is_error() {
        let stmt =
            resildb_sql::parse_statement("CREATE TABLE t (a INTEGER, PRIMARY KEY (zz))").unwrap();
        let resildb_sql::Statement::CreateTable(c) = stmt else {
            unreachable!()
        };
        assert!(TableSchema::from_create(&c).is_err());
    }

    #[test]
    fn lookups_are_case_insensitive() {
        let s = schema("CREATE TABLE t (W_YTD NUMERIC(12,2))");
        assert!(s.has_column("w_ytd"));
        assert!(s.has_column("W_Ytd"));
        assert!(!s.has_column("nope"));
    }

    #[test]
    fn row_width_is_schema_constant() {
        let s = schema("CREATE TABLE t (a INTEGER, b VARCHAR(10))");
        assert_eq!(s.row_width(), 4 + (1 + 8) + (1 + 11));
    }
}
