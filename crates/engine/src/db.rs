//! The database facade: sessions, transaction control, crash recovery.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use resildb_sim::telemetry::names as span_names;
use resildb_sim::{failpoints, LruMap, MetricsSnapshot, SimContext};
use resildb_sql::{
    bind_statement, parse_span_literal, parse_template, scan_statement, Literal, Statement,
    StatementScan,
};

use crate::catalog::{Catalog, TableHandle};
use crate::error::{EngineError, Result};
use crate::exec::{exec_statement, ExecOutcome, QueryResult, StmtCtx, UndoAction};
use crate::flavor::Flavor;
use crate::group_commit::GroupCommitWal;
use crate::lock::LockManager;
use crate::row::{Row, RowId};
use crate::schema::TableSchema;
use crate::wal::{self, InternalTxnId, LogOp, LogRecord};

/// Statement shapes the engine keeps parsed (see
/// [`Database::stmt_cache_stats`]). Sized for TPC-C-like workloads, whose
/// working set is a few dozen shapes.
const STMT_CACHE_CAPACITY: usize = 256;

/// Shards of the parsed-statement cache. Shapes hash uniformly by
/// fingerprint, so a handful of shards removes cross-session serialization
/// on the statement hot path while each shard stays big enough
/// (capacity / shards = 32 shapes) to hold a TPC-C-like working set.
const STMT_CACHE_SHARDS: usize = 8;

/// A parsed statement template cached by shape fingerprint: the literal
/// positions hold `?` parameters that are re-bound from the incoming text
/// on every hit.
#[derive(Debug)]
struct CachedStatement {
    template: Statement,
    params: usize,
}

/// Point-in-time counters of the engine's parsed-statement cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StmtCacheStats {
    /// Statements served by binding a cached template (lex+parse skipped).
    pub hits: u64,
    /// Statements that took the cold parse path despite being scannable.
    pub misses: u64,
}

#[derive(Debug)]
pub(crate) struct DbInner {
    name: String,
    flavor: Flavor,
    sim: SimContext,
    pub(crate) catalog: RwLock<Catalog>,
    pub(crate) wal: GroupCommitWal,
    locks: Arc<LockManager>,
    next_txn: AtomicU64,
    stmt_cache: Vec<Mutex<LruMap<u128, Arc<CachedStatement>>>>,
    stmt_cache_hits: AtomicU64,
    stmt_cache_misses: AtomicU64,
}

/// An embedded DBMS emulating one of the paper's three flavors.
///
/// `Database` is a cheaply cloneable handle; all clones share state. Open a
/// [`Session`] to execute SQL.
///
/// # Examples
///
/// ```
/// use resildb_engine::{Database, Flavor};
///
/// # fn main() -> Result<(), resildb_engine::EngineError> {
/// let db = Database::in_memory(Flavor::Postgres);
/// let mut session = db.session();
/// session.execute_sql("CREATE TABLE account (id INTEGER PRIMARY KEY, balance FLOAT)")?;
/// session.execute_sql("INSERT INTO account (id, balance) VALUES (1, 50.0)")?;
/// let result = session.query("SELECT balance FROM account WHERE id = 1")?;
/// assert_eq!(result.rows[0][0], resildb_engine::Value::Float(50.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Database {
    inner: Arc<DbInner>,
}

impl Database {
    /// Creates a database charging costs to `sim`.
    pub fn new(name: impl Into<String>, flavor: Flavor, sim: SimContext) -> Self {
        Self {
            inner: Arc::new(DbInner {
                name: name.into(),
                flavor,
                sim,
                catalog: RwLock::new(Catalog::new()),
                wal: GroupCommitWal::new(),
                locks: LockManager::new(),
                next_txn: AtomicU64::new(1),
                stmt_cache: (0..STMT_CACHE_SHARDS)
                    .map(|_| Mutex::new(LruMap::new(STMT_CACHE_CAPACITY / STMT_CACHE_SHARDS)))
                    .collect(),
                stmt_cache_hits: AtomicU64::new(0),
                stmt_cache_misses: AtomicU64::new(0),
            }),
        }
    }

    /// Creates a cost-free in-memory database (functional testing).
    pub fn in_memory(flavor: Flavor) -> Self {
        Self::new("mem", flavor, SimContext::free())
    }

    /// The database name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The emulated DBMS flavor.
    pub fn flavor(&self) -> Flavor {
        self.inner.flavor
    }

    /// The simulation context costs are charged to.
    pub fn sim(&self) -> &SimContext {
        &self.inner.sim
    }

    /// Opens a new session.
    pub fn session(&self) -> Session {
        Session {
            db: self.clone(),
            txn: None,
            prepared: Vec::new(),
        }
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        self.inner.catalog.read().names()
    }

    /// Handle to a table (for introspection adapters).
    ///
    /// # Errors
    ///
    /// Unknown table.
    pub fn table(&self, name: &str) -> Result<TableHandle> {
        self.inner.catalog.read().get(name)
    }

    /// A snapshot copy of the full WAL (what a log-analysis tool reads).
    pub fn wal_records(&self) -> Vec<LogRecord> {
        self.inner.wal.lock_untimed().records().to_vec()
    }

    /// Live row count of `name`.
    ///
    /// # Errors
    ///
    /// Unknown table.
    pub fn row_count(&self, name: &str) -> Result<u64> {
        Ok(self.table(name)?.read().row_count())
    }

    /// Snapshot of all live rows of a table (testing/verification aid;
    /// charges no page reads).
    ///
    /// # Errors
    ///
    /// Unknown table.
    pub fn snapshot_rows(&self, name: &str) -> Result<Vec<(RowId, Row)>> {
        let handle = self.table(name)?;
        let table = handle.read();
        let free = SimContext::free();
        let mut rows = Vec::new();
        table.scan(&free, |rid, row| {
            rows.push((rid, row));
            Ok(())
        })?;
        rows.sort_by_key(|(rid, _)| *rid);
        Ok(rows)
    }

    fn alloc_txn(&self) -> InternalTxnId {
        InternalTxnId(self.inner.next_txn.fetch_add(1, Ordering::Relaxed))
    }

    /// A metrics snapshot covering this engine and its simulation context:
    /// telemetry span histograms (`engine.*`, and — when a proxy shares
    /// the [`SimContext`] — `proxy.*`/`repair.*` too), parsed-statement
    /// cache counters, simulation charge counters and failpoint hits.
    pub fn metrics(&self) -> MetricsSnapshot {
        let sim = self.sim();
        let mut snap = sim.telemetry().snapshot();
        let sc = self.stmt_cache_stats();
        snap.set_counter("engine.stmt_cache.hits", sc.hits);
        snap.set_counter("engine.stmt_cache.misses", sc.misses);
        let stats = sim.stats();
        snap.set_counter("sim.page_hits", stats.page_hits.get());
        snap.set_counter("sim.page_misses", stats.page_misses.get());
        snap.set_counter("sim.pages_written", stats.pages_written.get());
        snap.set_counter("sim.log_bytes", stats.log_bytes.get());
        snap.set_counter("sim.log_forces", stats.log_forces.get());
        snap.set_counter("sim.statements", stats.statements.get());
        snap.set_counter("sim.rows_touched", stats.rows_touched.get());
        snap.set_counter("sim.round_trips", stats.round_trips.get());
        snap.set_counter("sim.network_bytes", stats.network_bytes.get());
        snap.set_counter("sim.injected_delays", stats.injected_delays.get());
        let hits = stats.page_hits.get();
        let total = hits + stats.page_misses.get();
        if total > 0 {
            snap.set_gauge("sim.pool.hit_ratio", hits as f64 / total as f64);
        }
        for (name, hits) in sim.faults().hit_counts() {
            snap.set_counter(&format!("fault.hits.{name}"), hits);
        }
        snap
    }

    /// Counters of the parsed-statement cache shared by all sessions.
    pub fn stmt_cache_stats(&self) -> StmtCacheStats {
        StmtCacheStats {
            hits: self.inner.stmt_cache_hits.load(Ordering::Relaxed),
            misses: self.inner.stmt_cache_misses.load(Ordering::Relaxed),
        }
    }

    /// Parses `sql`, serving repeated statement shapes from the shared
    /// template cache. A hit re-binds the cached template with the literals
    /// scanned from the incoming text, producing the exact AST a cold parse
    /// would; any doubt (unscannable text, kind drift, unparsable literal)
    /// falls through to the cold parser.
    /// The statement-cache shard a fingerprint hashes to.
    fn stmt_shard(&self, fingerprint: u128) -> &Mutex<LruMap<u128, Arc<CachedStatement>>> {
        let h = (fingerprint as u64) ^ ((fingerprint >> 64) as u64);
        &self.inner.stmt_cache[(h as usize) % self.inner.stmt_cache.len()]
    }

    fn parse_cached(&self, sql: &str) -> Result<Statement> {
        let Some(scan) = scan_statement(sql) else {
            return Ok(resildb_sql::parse_statement(sql)?);
        };
        let cached = self
            .stmt_shard(scan.fingerprint)
            .lock()
            .get(&scan.fingerprint)
            .map(Arc::clone);
        if let Some(entry) = cached {
            if entry.params == scan.spans.len() {
                if let Some(stmt) = bind_scanned(&entry.template, sql, &scan) {
                    self.inner.stmt_cache_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(stmt);
                }
            }
        }
        self.inner.stmt_cache_misses.fetch_add(1, Ordering::Relaxed);
        let stmt = resildb_sql::parse_statement(sql)?;
        if let Some(template) = parse_template(sql, &scan) {
            self.stmt_shard(scan.fingerprint).lock().insert(
                scan.fingerprint,
                Arc::new(CachedStatement {
                    template,
                    params: scan.spans.len(),
                }),
            );
        }
        Ok(stmt)
    }

    /// Writes the durable form of the WAL to `w` (see
    /// [`crate::wal_codec`]); together with [`Self::open_from_wal`] this
    /// persists the database — including the tracking tables, and with
    /// them the full repair capability — across process restarts.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn save_wal<W: std::io::Write>(&self, w: W) -> Result<()> {
        crate::wal_codec::write_wal(&self.wal_records(), w)
    }

    /// Reopens a database from a durable log produced by
    /// [`Self::save_wal`]: the log is restored verbatim and replayed, and
    /// transaction-id/LSN sequences continue where they left off.
    ///
    /// # Errors
    ///
    /// Corrupt logs or replay failures.
    pub fn open_from_wal<R: std::io::Read>(
        name: impl Into<String>,
        flavor: Flavor,
        sim: SimContext,
        r: R,
    ) -> Result<Self> {
        let records = crate::wal_codec::read_wal(r)?;
        let next_txn = records.iter().map(|rec| rec.txn.0 + 1).max().unwrap_or(1);
        let db = Database::new(name, flavor, sim);
        db.inner.wal.lock_untimed().restore(records);
        db.inner.next_txn.store(next_txn, Ordering::Relaxed);
        db.simulate_crash_and_recover()?;
        Ok(db)
    }

    /// Discards all in-memory table state and rebuilds it by replaying the
    /// WAL — the standard redo recovery a real DBMS performs after a crash.
    /// Only operations of committed transactions are reapplied; row ids are
    /// preserved, physical page offsets may differ.
    ///
    /// # Errors
    ///
    /// Propagates replay failures (which indicate WAL corruption — a bug).
    pub fn simulate_crash_and_recover(&self) -> Result<()> {
        let records = self.wal_records();
        let committed: std::collections::HashSet<InternalTxnId> = records
            .iter()
            .filter(|r| matches!(r.op, LogOp::Commit))
            .map(|r| r.txn)
            .collect();
        let mut catalog = self.inner.catalog.write();
        *catalog = Catalog::new();
        let free = SimContext::free();
        for rec in &records {
            if !committed.contains(&rec.txn) {
                continue;
            }
            match &rec.op {
                LogOp::CreateTable { schema } => {
                    catalog.create_table(schema.clone())?;
                }
                LogOp::DropTable { name } => {
                    catalog.drop_table(name)?;
                }
                LogOp::Insert {
                    table, rowid, row, ..
                } => {
                    let handle = catalog.get(table)?;
                    handle
                        .write()
                        .insert_with_rowid(*rowid, row.clone(), &free)?;
                }
                LogOp::Delete { table, rowid, .. } => {
                    let handle = catalog.get(table)?;
                    handle.write().delete(*rowid, &free)?;
                }
                LogOp::Update {
                    table,
                    rowid,
                    after,
                    ..
                } => {
                    let handle = catalog.get(table)?;
                    handle.write().update(*rowid, after.clone(), &free)?;
                }
                LogOp::Commit | LogOp::Abort => {}
            }
        }
        Ok(())
    }
}

/// Re-binds a cached template with the literal values scanned from `sql`.
/// `None` on any mismatch — the caller falls back to a cold parse.
fn bind_scanned(template: &Statement, sql: &str, scan: &StatementScan) -> Option<Statement> {
    let mut values = Vec::with_capacity(scan.spans.len());
    for span in &scan.spans {
        values.push(parse_span_literal(sql, span)?);
    }
    bind_statement(template, &values).ok()
}

/// A statement parsed once via [`Session::prepare`] and executable many
/// times with different `?`-parameter bindings — the engine half of the
/// driver-level prepared-statement API.
///
/// Cloning is cheap (the parsed template is shared), and a prepared
/// statement may outlive the session that created it: it is bound to the
/// database, not the session.
#[derive(Debug, Clone)]
pub struct PreparedStatement {
    template: Arc<Statement>,
    params: u32,
}

impl PreparedStatement {
    /// Number of `?` placeholders the statement expects.
    pub fn param_count(&self) -> u32 {
        self.params
    }

    /// The parsed template (placeholders included) — for diagnostics.
    pub fn statement(&self) -> &Statement {
        &self.template
    }
}

#[derive(Debug)]
struct TxnState {
    id: InternalTxnId,
    undo: Vec<UndoAction>,
    /// Redo records staged locally (costs and failpoints already paid via
    /// [`wal::stage_check`]); published contiguously at commit under the
    /// group-commit ticket, discarded on rollback.
    redo: Vec<LogOp>,
    explicit: bool,
}

/// One client connection to a [`Database`].
///
/// A session is single-threaded (`&mut self` for execution) and holds at
/// most one open transaction. Without an explicit `BEGIN`, every statement
/// runs in its own auto-committed transaction.
#[derive(Debug)]
pub struct Session {
    db: Database,
    txn: Option<TxnState>,
    prepared: Vec<PreparedStatement>,
}

impl Session {
    /// The database this session talks to.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Whether an explicit transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.txn.as_ref().is_some_and(|t| t.explicit)
    }

    /// The open transaction's internal id, if any.
    pub fn current_txn(&self) -> Option<InternalTxnId> {
        self.txn.as_ref().map(|t| t.id)
    }

    /// Parses and executes one SQL statement.
    ///
    /// # Errors
    ///
    /// Parse errors, execution errors, or [`EngineError::Deadlock`] (after
    /// which the transaction has been rolled back automatically).
    pub fn execute_sql(&mut self, sql: &str) -> Result<ExecOutcome> {
        let stmt = self.db.parse_cached(sql)?;
        self.execute(&stmt)
    }

    /// Parses `sql` (which may contain `?` placeholders) into a reusable
    /// [`PreparedStatement`], paying the parse cost once.
    ///
    /// # Errors
    ///
    /// Parse errors.
    pub fn prepare(&self, sql: &str) -> Result<PreparedStatement> {
        let (stmt, params) = resildb_sql::parse_prepared(sql)?;
        Ok(PreparedStatement {
            template: Arc::new(stmt),
            params,
        })
    }

    /// Executes a prepared statement with `params` bound to its `?`
    /// placeholders in source order.
    ///
    /// # Errors
    ///
    /// [`EngineError::Constraint`] on a parameter-count mismatch, plus
    /// everything [`Self::execute_sql`] can return.
    pub fn execute_prepared(
        &mut self,
        prepared: &PreparedStatement,
        params: &[Literal],
    ) -> Result<ExecOutcome> {
        if params.len() != prepared.params as usize {
            return Err(EngineError::Constraint(format!(
                "prepared statement expects {} parameters, {} bound",
                prepared.params,
                params.len()
            )));
        }
        let stmt =
            bind_statement(&prepared.template, params).map_err(resildb_sql::ParseError::from)?;
        self.execute(&stmt)
    }

    /// Prepares `sql` and stores the statement in a session-local slot,
    /// returning the slot index — the handle-based shape the unified
    /// `Session` trait (resildb-core) exposes.
    ///
    /// # Errors
    ///
    /// Parse errors.
    pub fn prepare_slot(&mut self, sql: &str) -> Result<u64> {
        let prepared = self.prepare(sql)?;
        self.prepared.push(prepared);
        Ok((self.prepared.len() - 1) as u64)
    }

    /// Executes the prepared statement stored in `slot` (from
    /// [`Self::prepare_slot`]) with `params` bound.
    ///
    /// # Errors
    ///
    /// [`EngineError::Constraint`] on an unknown slot, plus everything
    /// [`Self::execute_prepared`] can return.
    pub fn execute_slot(&mut self, slot: u64, params: &[Literal]) -> Result<ExecOutcome> {
        let prepared = self
            .prepared
            .get(slot as usize)
            .cloned()
            .ok_or_else(|| EngineError::Constraint(format!("unknown prepared slot {slot}")))?;
        self.execute_prepared(&prepared, params)
    }

    /// Executes an already-parsed statement.
    ///
    /// # Errors
    ///
    /// See [`Self::execute_sql`].
    pub fn execute(&mut self, stmt: &Statement) -> Result<ExecOutcome> {
        let _span = self
            .db
            .sim()
            .telemetry()
            .owned_span(span_names::ENGINE_EXECUTE);
        match stmt {
            Statement::Begin => {
                if self.in_transaction() {
                    return Err(EngineError::InvalidTransactionState(
                        "BEGIN inside an open transaction".into(),
                    ));
                }
                self.txn = Some(TxnState {
                    id: self.db.alloc_txn(),
                    undo: Vec::new(),
                    redo: Vec::new(),
                    explicit: true,
                });
                Ok(ExecOutcome::TxnControl)
            }
            Statement::Commit => {
                if !self.in_transaction() {
                    return Err(EngineError::InvalidTransactionState(
                        "COMMIT without an open transaction".into(),
                    ));
                }
                self.commit_open()?;
                Ok(ExecOutcome::TxnControl)
            }
            Statement::Rollback => {
                if !self.in_transaction() {
                    return Err(EngineError::InvalidTransactionState(
                        "ROLLBACK without an open transaction".into(),
                    ));
                }
                self.rollback_open()?;
                Ok(ExecOutcome::TxnControl)
            }
            Statement::CreateTable(ct) => {
                let schema = TableSchema::from_create(ct)?;
                let ddl_txn = self.db.alloc_txn();
                self.db.inner.catalog.write().create_table(schema.clone())?;
                let logged = self.publish_ddl(
                    ddl_txn,
                    LogOp::CreateTable {
                        schema: schema.clone(),
                    },
                );
                if let Err(e) = logged {
                    // Unlogged DDL must not survive: take the catalog change
                    // back so memory and log agree.
                    let _ = self.db.inner.catalog.write().drop_table(&schema.name);
                    return Err(e);
                }
                Ok(ExecOutcome::Ddl)
            }
            Statement::DropTable(dt) => {
                let ddl_txn = self.db.alloc_txn();
                let dropped = self.db.inner.catalog.write().drop_table(&dt.name)?;
                let logged = self.publish_ddl(
                    ddl_txn,
                    LogOp::DropTable {
                        name: dt.name.to_ascii_lowercase(),
                    },
                );
                if let Err(e) = logged {
                    // Put the table back: the DROP was never made durable.
                    self.db.inner.catalog.write().restore_table(dropped);
                    return Err(e);
                }
                Ok(ExecOutcome::Ddl)
            }
            dml => self.execute_dml(dml),
        }
    }

    /// Convenience: executes `sql` and returns its rows.
    ///
    /// # Errors
    ///
    /// Execution errors, or [`EngineError::Type`]-class errors when the
    /// statement is not a query.
    pub fn query(&mut self, sql: &str) -> Result<QueryResult> {
        match self.execute_sql(sql)? {
            ExecOutcome::Rows(r) => Ok(r),
            other => Err(EngineError::Internal(format!(
                "expected rows, statement produced {other:?}"
            ))),
        }
    }

    fn execute_dml(&mut self, stmt: &Statement) -> Result<ExecOutcome> {
        let implicit = self.txn.is_none();
        if implicit {
            self.txn = Some(TxnState {
                id: self.db.alloc_txn(),
                undo: Vec::new(),
                redo: Vec::new(),
                explicit: false,
            });
        }
        let result = {
            let Some(txn) = self.txn.as_mut() else {
                return Err(EngineError::Internal("transaction state missing".into()));
            };
            let mut ctx = StmtCtx {
                catalog: &self.db.inner.catalog,
                locks: &self.db.inner.locks,
                sim: &self.db.inner.sim,
                flavor: self.db.inner.flavor,
                txn: txn.id,
                undo: &mut txn.undo,
                redo: &mut txn.redo,
            };
            exec_statement(&mut ctx, stmt)
        };
        match result {
            Ok(outcome) => {
                if implicit {
                    self.commit_open()?;
                }
                Ok(outcome)
            }
            Err(e) => {
                if implicit || e == EngineError::Deadlock {
                    // Deadlock victims are rolled back by the engine, as in
                    // the real DBMSs; other errors in an explicit
                    // transaction leave it open for the client to decide.
                    let _ = self.rollback_open();
                }
                Err(e)
            }
        }
    }

    /// Publishes a self-committing DDL record plus its commit record via
    /// the group-commit writer, staging both first so costs and failpoints
    /// behave exactly like DML appends.
    fn publish_ddl(&self, ddl_txn: InternalTxnId, op: LogOp) -> Result<()> {
        wal::stage_check(&op, self.db.flavor(), None, self.db.sim())?;
        wal::stage_check(&LogOp::Commit, self.db.flavor(), None, self.db.sim())?;
        let lsn = self
            .db
            .inner
            .wal
            .publish_commit(ddl_txn, vec![op], self.db.sim());
        self.db.inner.wal.force_covering(lsn, self.db.sim());
        Ok(())
    }

    fn commit_open(&mut self) -> Result<()> {
        if self.txn.is_none() {
            return Ok(());
        }
        let _span = self
            .db
            .sim()
            .telemetry()
            .owned_span(span_names::ENGINE_COMMIT);
        // The fallible (and panic-capable: injected `FaultAction::Panic`)
        // steps run while the transaction still sits in `self.txn`. Taking
        // it out first would mean an unwind drops the undo chain — the
        // eagerly-applied writes would survive as if committed and the
        // transaction's locks would never be released (a torn mid-commit
        // state the scenario fuzzer caught). Left in place, an unwind is
        // safe: `Session::drop` rolls the open transaction back.
        if self.txn.as_ref().is_some_and(|t| !t.undo.is_empty()) {
            let logged = (|| -> Result<()> {
                if self
                    .db
                    .sim()
                    .fault_check(failpoints::ENGINE_WAL_COMMIT)
                    .is_some()
                {
                    return Err(EngineError::Injected(failpoints::ENGINE_WAL_COMMIT.into()));
                }
                wal::stage_check(&LogOp::Commit, self.db.flavor(), None, self.db.sim())
            })();
            if let Err(e) = logged {
                // A commit that cannot reach the log aborts, as in real
                // DBMSs: roll the transaction back so no unlogged writes
                // survive and the locks are released.
                let _ = self.rollback_open();
                return Err(e);
            }
        }
        let Some(mut txn) = self.txn.take() else {
            return Ok(());
        };
        if !txn.undo.is_empty() {
            // Everything below is failure-free: publish the staged redo
            // contiguously under the group-commit ticket, then join the
            // group force covering our commit record.
            let redo = std::mem::take(&mut txn.redo);
            let lsn = self
                .db
                .inner
                .wal
                .publish_commit(txn.id, redo, self.db.sim());
            self.db.inner.wal.force_covering(lsn, self.db.sim());
        }
        self.db.inner.locks.release_all(txn.id);
        let telemetry = self.db.sim().telemetry();
        telemetry.count(span_names::ENGINE_COMMIT_COUNT, 1);
        // Flight-record the WAL-side commit under the DBMS-internal id;
        // the repair tool's correlation step joins it to the proxy id.
        telemetry.flight().emit(
            0,
            0,
            resildb_sim::EventKind::WalCommit { internal: txn.id.0 },
        );
        Ok(())
    }

    fn rollback_open(&mut self) -> Result<()> {
        let Some(txn) = self.txn.take() else {
            return Ok(());
        };
        let catalog = self.db.inner.catalog.read();
        let sim = self.db.sim();
        for action in txn.undo.iter().rev() {
            match action {
                UndoAction::UnInsert { table, rowid } => {
                    catalog.get(table)?.write().delete(*rowid, sim)?;
                }
                UndoAction::ReInsert {
                    table,
                    rowid,
                    row,
                    loc,
                } => {
                    catalog
                        .get(table)?
                        .write()
                        .restore_at(*rowid, row.clone(), *loc, sim)?;
                }
                UndoAction::UnUpdate {
                    table,
                    rowid,
                    before,
                } => {
                    catalog
                        .get(table)?
                        .write()
                        .update(*rowid, before.clone(), sim)?;
                }
            }
        }
        drop(catalog);
        if !txn.undo.is_empty() {
            // The abort record is advisory — recovery treats transactions
            // without a commit record as aborted — so rollback must succeed
            // (and release its locks) even when the log is failing. The
            // staged redo is simply discarded: an aborted transaction's row
            // records never reach the shared log.
            if wal::stage_check(&LogOp::Abort, self.db.flavor(), None, self.db.sim()).is_ok() {
                self.db
                    .inner
                    .wal
                    .lock(self.db.sim())
                    .publish(txn.id, LogOp::Abort);
            }
        }
        self.db.inner.locks.release_all(txn.id);
        self.db.sim().telemetry().flight().emit(
            0,
            0,
            resildb_sim::EventKind::WalAbort { internal: txn.id.0 },
        );
        Ok(())
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // Best-effort cleanup; a panic here would abort during unwinding.
        if self.txn.is_some() {
            let _ = self.rollback_open();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn stmt_cache_hits_on_repeated_shapes() {
        let db = Database::in_memory(Flavor::Postgres);
        let mut s = db.session();
        s.execute_sql("CREATE TABLE t (a INTEGER)").unwrap();
        for i in 0..5 {
            s.execute_sql(&format!("INSERT INTO t (a) VALUES ({i})"))
                .unwrap();
        }
        let stats = db.stmt_cache_stats();
        assert_eq!(stats.misses, 1, "one cold parse per statement shape");
        assert_eq!(
            stats.hits, 4,
            "subsequent literal variants bind the template"
        );
        assert_eq!(db.row_count("t").unwrap(), 5);
    }

    #[test]
    fn cache_is_shared_across_sessions() {
        let db = Database::in_memory(Flavor::Postgres);
        db.session()
            .execute_sql("CREATE TABLE t (a INTEGER)")
            .unwrap();
        db.session()
            .execute_sql("INSERT INTO t (a) VALUES (1)")
            .unwrap();
        db.session()
            .execute_sql("INSERT INTO t (a) VALUES (2)")
            .unwrap();
        let stats = db.stmt_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn cached_execution_matches_cold() {
        let db = Database::in_memory(Flavor::Postgres);
        let mut s = db.session();
        s.execute_sql("CREATE TABLE t (a INTEGER, b TEXT)").unwrap();
        for (a, b) in [(1, "x"), (2, "y"), (3, "z")] {
            s.execute_sql(&format!("INSERT INTO t (a, b) VALUES ({a}, '{b}')"))
                .unwrap();
        }
        // Warm the SELECT shape, then hit it with a different literal.
        let cold = s.query("SELECT b FROM t WHERE a = 1").unwrap();
        assert_eq!(cold.rows, vec![vec![Value::Str("x".into())]]);
        let warm = s.query("SELECT b FROM t WHERE a = 3").unwrap();
        assert_eq!(warm.rows, vec![vec![Value::Str("z".into())]]);
        assert!(db.stmt_cache_stats().hits >= 1);
    }

    #[test]
    fn negative_literals_are_not_mismatched_by_the_cache() {
        let db = Database::in_memory(Flavor::Postgres);
        let mut s = db.session();
        s.execute_sql("CREATE TABLE t (a INTEGER)").unwrap();
        s.execute_sql("INSERT INTO t (a) VALUES (5)").unwrap();
        s.execute_sql("INSERT INTO t (a) VALUES (-5)").unwrap();
        let rows = s.query("SELECT a FROM t WHERE a = -5").unwrap();
        assert_eq!(rows.rows, vec![vec![Value::Int(-5)]]);
    }

    #[test]
    fn prepared_statements_bind_and_execute() {
        let db = Database::in_memory(Flavor::Postgres);
        let mut s = db.session();
        s.execute_sql("CREATE TABLE t (a INTEGER, b TEXT)").unwrap();
        let ins = s.prepare("INSERT INTO t (a, b) VALUES (?, ?)").unwrap();
        assert_eq!(ins.param_count(), 2);
        for (a, b) in [(1, "x"), (2, "y")] {
            s.execute_prepared(&ins, &[Literal::Int(a), Literal::Str(b.into())])
                .unwrap();
        }
        let sel = s.prepare("SELECT b FROM t WHERE a = ?").unwrap();
        match s.execute_prepared(&sel, &[Literal::Int(2)]).unwrap() {
            ExecOutcome::Rows(r) => {
                assert_eq!(r.rows, vec![vec![Value::Str("y".into())]]);
            }
            other => panic!("expected rows, got {other:?}"),
        }
    }

    #[test]
    fn prepared_arity_mismatch_is_a_constraint_error() {
        let db = Database::in_memory(Flavor::Postgres);
        let mut s = db.session();
        s.execute_sql("CREATE TABLE t (a INTEGER)").unwrap();
        let ins = s.prepare("INSERT INTO t (a) VALUES (?)").unwrap();
        assert!(matches!(
            s.execute_prepared(&ins, &[]),
            Err(EngineError::Constraint(_))
        ));
        assert!(matches!(
            s.execute_prepared(&ins, &[Literal::Int(1), Literal::Int(2)]),
            Err(EngineError::Constraint(_))
        ));
    }
}
