//! The database facade: sessions, transaction control, crash recovery.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use resildb_sim::SimContext;
use resildb_sql::Statement;

use crate::catalog::{Catalog, TableHandle};
use crate::error::{EngineError, Result};
use crate::exec::{exec_statement, ExecOutcome, QueryResult, StmtCtx, UndoAction};
use crate::flavor::Flavor;
use crate::lock::LockManager;
use crate::row::{Row, RowId};
use crate::schema::TableSchema;
use crate::wal::{InternalTxnId, LogOp, LogRecord, Wal};

#[derive(Debug)]
pub(crate) struct DbInner {
    name: String,
    flavor: Flavor,
    sim: SimContext,
    pub(crate) catalog: RwLock<Catalog>,
    pub(crate) wal: Mutex<Wal>,
    locks: Arc<LockManager>,
    next_txn: AtomicU64,
}

/// An embedded DBMS emulating one of the paper's three flavors.
///
/// `Database` is a cheaply cloneable handle; all clones share state. Open a
/// [`Session`] to execute SQL.
///
/// # Examples
///
/// ```
/// use resildb_engine::{Database, Flavor};
///
/// # fn main() -> Result<(), resildb_engine::EngineError> {
/// let db = Database::in_memory(Flavor::Postgres);
/// let mut session = db.session();
/// session.execute_sql("CREATE TABLE account (id INTEGER PRIMARY KEY, balance FLOAT)")?;
/// session.execute_sql("INSERT INTO account (id, balance) VALUES (1, 50.0)")?;
/// let result = session.query("SELECT balance FROM account WHERE id = 1")?;
/// assert_eq!(result.rows[0][0], resildb_engine::Value::Float(50.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Database {
    inner: Arc<DbInner>,
}

impl Database {
    /// Creates a database charging costs to `sim`.
    pub fn new(name: impl Into<String>, flavor: Flavor, sim: SimContext) -> Self {
        Self {
            inner: Arc::new(DbInner {
                name: name.into(),
                flavor,
                sim,
                catalog: RwLock::new(Catalog::new()),
                wal: Mutex::new(Wal::new()),
                locks: LockManager::new(),
                next_txn: AtomicU64::new(1),
            }),
        }
    }

    /// Creates a cost-free in-memory database (functional testing).
    pub fn in_memory(flavor: Flavor) -> Self {
        Self::new("mem", flavor, SimContext::free())
    }

    /// The database name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The emulated DBMS flavor.
    pub fn flavor(&self) -> Flavor {
        self.inner.flavor
    }

    /// The simulation context costs are charged to.
    pub fn sim(&self) -> &SimContext {
        &self.inner.sim
    }

    /// Opens a new session.
    pub fn session(&self) -> Session {
        Session {
            db: self.clone(),
            txn: None,
        }
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        self.inner.catalog.read().names()
    }

    /// Handle to a table (for introspection adapters).
    ///
    /// # Errors
    ///
    /// Unknown table.
    pub fn table(&self, name: &str) -> Result<TableHandle> {
        self.inner.catalog.read().get(name)
    }

    /// A snapshot copy of the full WAL (what a log-analysis tool reads).
    pub fn wal_records(&self) -> Vec<LogRecord> {
        self.inner.wal.lock().records().to_vec()
    }

    /// Live row count of `name`.
    ///
    /// # Errors
    ///
    /// Unknown table.
    pub fn row_count(&self, name: &str) -> Result<u64> {
        Ok(self.table(name)?.read().row_count())
    }

    /// Snapshot of all live rows of a table (testing/verification aid;
    /// charges no page reads).
    ///
    /// # Errors
    ///
    /// Unknown table.
    pub fn snapshot_rows(&self, name: &str) -> Result<Vec<(RowId, Row)>> {
        let handle = self.table(name)?;
        let table = handle.read();
        let free = SimContext::free();
        let mut rows = Vec::new();
        table.scan(&free, |rid, row| {
            rows.push((rid, row));
            Ok(())
        })?;
        rows.sort_by_key(|(rid, _)| *rid);
        Ok(rows)
    }

    fn alloc_txn(&self) -> InternalTxnId {
        InternalTxnId(self.inner.next_txn.fetch_add(1, Ordering::Relaxed))
    }

    /// Writes the durable form of the WAL to `w` (see
    /// [`crate::wal_codec`]); together with [`Self::open_from_wal`] this
    /// persists the database — including the tracking tables, and with
    /// them the full repair capability — across process restarts.
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn save_wal<W: std::io::Write>(&self, w: W) -> Result<()> {
        crate::wal_codec::write_wal(&self.wal_records(), w)
    }

    /// Reopens a database from a durable log produced by
    /// [`Self::save_wal`]: the log is restored verbatim and replayed, and
    /// transaction-id/LSN sequences continue where they left off.
    ///
    /// # Errors
    ///
    /// Corrupt logs or replay failures.
    pub fn open_from_wal<R: std::io::Read>(
        name: impl Into<String>,
        flavor: Flavor,
        sim: SimContext,
        r: R,
    ) -> Result<Self> {
        let records = crate::wal_codec::read_wal(r)?;
        let next_txn = records.iter().map(|rec| rec.txn.0 + 1).max().unwrap_or(1);
        let db = Database::new(name, flavor, sim);
        db.inner.wal.lock().restore(records);
        db.inner.next_txn.store(next_txn, Ordering::Relaxed);
        db.simulate_crash_and_recover()?;
        Ok(db)
    }

    /// Discards all in-memory table state and rebuilds it by replaying the
    /// WAL — the standard redo recovery a real DBMS performs after a crash.
    /// Only operations of committed transactions are reapplied; row ids are
    /// preserved, physical page offsets may differ.
    ///
    /// # Errors
    ///
    /// Propagates replay failures (which indicate WAL corruption — a bug).
    pub fn simulate_crash_and_recover(&self) -> Result<()> {
        let records = self.wal_records();
        let committed: std::collections::HashSet<InternalTxnId> = records
            .iter()
            .filter(|r| matches!(r.op, LogOp::Commit))
            .map(|r| r.txn)
            .collect();
        let mut catalog = self.inner.catalog.write();
        *catalog = Catalog::new();
        let free = SimContext::free();
        for rec in &records {
            if !committed.contains(&rec.txn) {
                continue;
            }
            match &rec.op {
                LogOp::CreateTable { schema } => {
                    catalog.create_table(schema.clone())?;
                }
                LogOp::DropTable { name } => {
                    catalog.drop_table(name)?;
                }
                LogOp::Insert {
                    table, rowid, row, ..
                } => {
                    let handle = catalog.get(table)?;
                    handle
                        .write()
                        .insert_with_rowid(*rowid, row.clone(), &free)?;
                }
                LogOp::Delete { table, rowid, .. } => {
                    let handle = catalog.get(table)?;
                    handle.write().delete(*rowid, &free)?;
                }
                LogOp::Update {
                    table,
                    rowid,
                    after,
                    ..
                } => {
                    let handle = catalog.get(table)?;
                    handle.write().update(*rowid, after.clone(), &free)?;
                }
                LogOp::Commit | LogOp::Abort => {}
            }
        }
        Ok(())
    }
}

#[derive(Debug)]
struct TxnState {
    id: InternalTxnId,
    undo: Vec<UndoAction>,
    explicit: bool,
}

/// One client connection to a [`Database`].
///
/// A session is single-threaded (`&mut self` for execution) and holds at
/// most one open transaction. Without an explicit `BEGIN`, every statement
/// runs in its own auto-committed transaction.
#[derive(Debug)]
pub struct Session {
    db: Database,
    txn: Option<TxnState>,
}

impl Session {
    /// The database this session talks to.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Whether an explicit transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.txn.as_ref().is_some_and(|t| t.explicit)
    }

    /// The open transaction's internal id, if any.
    pub fn current_txn(&self) -> Option<InternalTxnId> {
        self.txn.as_ref().map(|t| t.id)
    }

    /// Parses and executes one SQL statement.
    ///
    /// # Errors
    ///
    /// Parse errors, execution errors, or [`EngineError::Deadlock`] (after
    /// which the transaction has been rolled back automatically).
    pub fn execute_sql(&mut self, sql: &str) -> Result<ExecOutcome> {
        let stmt = resildb_sql::parse_statement(sql)?;
        self.execute(&stmt)
    }

    /// Executes an already-parsed statement.
    ///
    /// # Errors
    ///
    /// See [`Self::execute_sql`].
    pub fn execute(&mut self, stmt: &Statement) -> Result<ExecOutcome> {
        match stmt {
            Statement::Begin => {
                if self.in_transaction() {
                    return Err(EngineError::InvalidTransactionState(
                        "BEGIN inside an open transaction".into(),
                    ));
                }
                self.txn = Some(TxnState {
                    id: self.db.alloc_txn(),
                    undo: Vec::new(),
                    explicit: true,
                });
                Ok(ExecOutcome::TxnControl)
            }
            Statement::Commit => {
                if !self.in_transaction() {
                    return Err(EngineError::InvalidTransactionState(
                        "COMMIT without an open transaction".into(),
                    ));
                }
                self.commit_open()?;
                Ok(ExecOutcome::TxnControl)
            }
            Statement::Rollback => {
                if !self.in_transaction() {
                    return Err(EngineError::InvalidTransactionState(
                        "ROLLBACK without an open transaction".into(),
                    ));
                }
                self.rollback_open()?;
                Ok(ExecOutcome::TxnControl)
            }
            Statement::CreateTable(ct) => {
                let schema = TableSchema::from_create(ct)?;
                let ddl_txn = self.db.alloc_txn();
                self.db.inner.catalog.write().create_table(schema.clone())?;
                let mut wal = self.db.inner.wal.lock();
                wal.append(
                    ddl_txn,
                    LogOp::CreateTable { schema },
                    self.db.flavor(),
                    None,
                    self.db.sim(),
                );
                wal.append(ddl_txn, LogOp::Commit, self.db.flavor(), None, self.db.sim());
                drop(wal);
                self.db.sim().charge_log_force();
                Ok(ExecOutcome::Ddl)
            }
            Statement::DropTable(dt) => {
                let ddl_txn = self.db.alloc_txn();
                self.db.inner.catalog.write().drop_table(&dt.name)?;
                let mut wal = self.db.inner.wal.lock();
                wal.append(
                    ddl_txn,
                    LogOp::DropTable {
                        name: dt.name.to_ascii_lowercase(),
                    },
                    self.db.flavor(),
                    None,
                    self.db.sim(),
                );
                wal.append(ddl_txn, LogOp::Commit, self.db.flavor(), None, self.db.sim());
                drop(wal);
                self.db.sim().charge_log_force();
                Ok(ExecOutcome::Ddl)
            }
            dml => self.execute_dml(dml),
        }
    }

    /// Convenience: executes `sql` and returns its rows.
    ///
    /// # Errors
    ///
    /// Execution errors, or [`EngineError::Type`]-class errors when the
    /// statement is not a query.
    pub fn query(&mut self, sql: &str) -> Result<QueryResult> {
        match self.execute_sql(sql)? {
            ExecOutcome::Rows(r) => Ok(r),
            other => Err(EngineError::Internal(format!(
                "expected rows, statement produced {other:?}"
            ))),
        }
    }

    fn execute_dml(&mut self, stmt: &Statement) -> Result<ExecOutcome> {
        let implicit = self.txn.is_none();
        if implicit {
            self.txn = Some(TxnState {
                id: self.db.alloc_txn(),
                undo: Vec::new(),
                explicit: false,
            });
        }
        let result = {
            let txn = self.txn.as_mut().expect("just ensured");
            let mut ctx = StmtCtx {
                catalog: &self.db.inner.catalog,
                wal: &self.db.inner.wal,
                locks: &self.db.inner.locks,
                sim: &self.db.inner.sim,
                flavor: self.db.inner.flavor,
                txn: txn.id,
                undo: &mut txn.undo,
            };
            exec_statement(&mut ctx, stmt)
        };
        match result {
            Ok(outcome) => {
                if implicit {
                    self.commit_open()?;
                }
                Ok(outcome)
            }
            Err(e) => {
                if implicit || e == EngineError::Deadlock {
                    // Deadlock victims are rolled back by the engine, as in
                    // the real DBMSs; other errors in an explicit
                    // transaction leave it open for the client to decide.
                    let _ = self.rollback_open();
                }
                Err(e)
            }
        }
    }

    fn commit_open(&mut self) -> Result<()> {
        let Some(txn) = self.txn.take() else {
            return Ok(());
        };
        if !txn.undo.is_empty() {
            self.db.inner.wal.lock().append(
                txn.id,
                LogOp::Commit,
                self.db.flavor(),
                None,
                self.db.sim(),
            );
            self.db.sim().charge_log_force();
        }
        self.db.inner.locks.release_all(txn.id);
        Ok(())
    }

    fn rollback_open(&mut self) -> Result<()> {
        let Some(txn) = self.txn.take() else {
            return Ok(());
        };
        let catalog = self.db.inner.catalog.read();
        let sim = self.db.sim();
        for action in txn.undo.iter().rev() {
            match action {
                UndoAction::UnInsert { table, rowid } => {
                    catalog.get(table)?.write().delete(*rowid, sim)?;
                }
                UndoAction::ReInsert { table, rowid, row } => {
                    catalog
                        .get(table)?
                        .write()
                        .insert_with_rowid(*rowid, row.clone(), sim)?;
                }
                UndoAction::UnUpdate {
                    table,
                    rowid,
                    before,
                } => {
                    catalog.get(table)?.write().update(*rowid, before.clone(), sim)?;
                }
            }
        }
        drop(catalog);
        if !txn.undo.is_empty() {
            self.db.inner.wal.lock().append(
                txn.id,
                LogOp::Abort,
                self.db.flavor(),
                None,
                self.db.sim(),
            );
        }
        self.db.inner.locks.release_all(txn.id);
        Ok(())
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // Best-effort cleanup; a panic here would abort during unwinding.
        if self.txn.is_some() {
            let _ = self.rollback_open();
        }
    }
}
