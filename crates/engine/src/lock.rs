//! Row-level exclusive locking with deadlock detection.
//!
//! Writers (and `SELECT ... FOR UPDATE`) take exclusive row locks held
//! until commit/rollback (strict two-phase locking). Readers run at
//! read-committed isolation without locks. Deadlocks are detected by cycle
//! search over the wait-for graph; the requesting transaction is the victim
//! and receives [`EngineError::Deadlock`].

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::error::{EngineError, Result};
use crate::row::RowId;
use crate::wal::InternalTxnId;

/// A lockable resource.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ResourceId {
    /// One row of a table.
    Row(String, RowId),
    /// A whole table (used by DDL).
    Table(String),
}

#[derive(Debug, Default)]
struct LockState {
    /// Resource → owning transaction.
    owners: HashMap<ResourceId, InternalTxnId>,
    /// Transaction → resources it owns (for bulk release).
    owned: HashMap<InternalTxnId, HashSet<ResourceId>>,
    /// Waiter → the owner it waits on (single edge per waiter).
    waits_for: HashMap<InternalTxnId, InternalTxnId>,
}

impl LockState {
    /// True when following wait-edges from `from` reaches `target`.
    fn reaches(&self, from: InternalTxnId, target: InternalTxnId) -> bool {
        let mut cur = from;
        let mut hops = 0;
        while let Some(&next) = self.waits_for.get(&cur) {
            if next == target {
                return true;
            }
            cur = next;
            hops += 1;
            if hops > self.waits_for.len() {
                return false; // defensive: malformed graph
            }
        }
        false
    }
}

/// The lock manager shared by all sessions of a database.
#[derive(Debug, Default)]
pub struct LockManager {
    state: Mutex<LockState>,
    released: Condvar,
}

impl LockManager {
    /// Creates an empty manager.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Acquires an exclusive lock on `res` for `txn`, blocking while another
    /// transaction holds it.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Deadlock`] when waiting would close a cycle in
    /// the wait-for graph (the caller must roll the transaction back), and
    /// after a generous timeout as a safety net.
    pub fn lock_exclusive(&self, txn: InternalTxnId, res: ResourceId) -> Result<()> {
        let mut st = self.state.lock();
        loop {
            match st.owners.get(&res) {
                None => {
                    st.owners.insert(res.clone(), txn);
                    st.owned.entry(txn).or_default().insert(res);
                    return Ok(());
                }
                Some(&owner) if owner == txn => return Ok(()),
                Some(&owner) => {
                    // Would waiting on `owner` create a cycle back to us?
                    if owner == txn || st.reaches(owner, txn) {
                        return Err(EngineError::Deadlock);
                    }
                    st.waits_for.insert(txn, owner);
                    let timed_out = self
                        .released
                        .wait_for(&mut st, Duration::from_secs(10))
                        .timed_out();
                    st.waits_for.remove(&txn);
                    if timed_out {
                        return Err(EngineError::Deadlock);
                    }
                }
            }
        }
    }

    /// Releases every lock held by `txn` and wakes all waiters.
    pub fn release_all(&self, txn: InternalTxnId) {
        let mut st = self.state.lock();
        if let Some(resources) = st.owned.remove(&txn) {
            for r in resources {
                st.owners.remove(&r);
            }
        }
        st.waits_for.remove(&txn);
        drop(st);
        self.released.notify_all();
    }

    /// Number of locks currently held by `txn` (diagnostics).
    pub fn held_by(&self, txn: InternalTxnId) -> usize {
        self.state.lock().owned.get(&txn).map_or(0, |s| s.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn row(id: u64) -> ResourceId {
        ResourceId::Row("t".into(), RowId(id))
    }

    #[test]
    fn reentrant_lock_is_free() {
        let lm = LockManager::new();
        lm.lock_exclusive(InternalTxnId(1), row(1)).unwrap();
        lm.lock_exclusive(InternalTxnId(1), row(1)).unwrap();
        assert_eq!(lm.held_by(InternalTxnId(1)), 1);
    }

    #[test]
    fn release_unblocks_waiter() {
        let lm = LockManager::new();
        lm.lock_exclusive(InternalTxnId(1), row(1)).unwrap();
        let lm2 = Arc::clone(&lm);
        let handle = thread::spawn(move || lm2.lock_exclusive(InternalTxnId(2), row(1)));
        thread::sleep(Duration::from_millis(50));
        lm.release_all(InternalTxnId(1));
        handle.join().unwrap().unwrap();
        assert_eq!(lm.held_by(InternalTxnId(2)), 1);
    }

    #[test]
    fn two_party_deadlock_is_detected() {
        let lm = LockManager::new();
        lm.lock_exclusive(InternalTxnId(1), row(1)).unwrap();
        lm.lock_exclusive(InternalTxnId(2), row(2)).unwrap();
        let lm2 = Arc::clone(&lm);
        // txn 2 waits for row 1 (held by txn 1).
        let handle = thread::spawn(move || {
            let r = lm2.lock_exclusive(InternalTxnId(2), row(1));
            lm2.release_all(InternalTxnId(2));
            r
        });
        thread::sleep(Duration::from_millis(50));
        // txn 1 requesting row 2 closes the cycle and must fail fast.
        let err = lm.lock_exclusive(InternalTxnId(1), row(2)).unwrap_err();
        assert_eq!(err, EngineError::Deadlock);
        lm.release_all(InternalTxnId(1));
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn release_all_clears_everything() {
        let lm = LockManager::new();
        lm.lock_exclusive(InternalTxnId(1), row(1)).unwrap();
        lm.lock_exclusive(InternalTxnId(1), row(2)).unwrap();
        lm.release_all(InternalTxnId(1));
        assert_eq!(lm.held_by(InternalTxnId(1)), 0);
        // Another txn can take the rows immediately.
        lm.lock_exclusive(InternalTxnId(2), row(1)).unwrap();
    }

    #[test]
    fn table_and_row_locks_are_distinct_resources() {
        let lm = LockManager::new();
        lm.lock_exclusive(InternalTxnId(1), ResourceId::Table("t".into()))
            .unwrap();
        // A row in `t` is a separate resource in this manager.
        lm.lock_exclusive(InternalTxnId(2), row(1)).unwrap();
    }
}
