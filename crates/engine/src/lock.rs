//! Striped row-level exclusive locking with deadlock detection.
//!
//! Writers (and `SELECT ... FOR UPDATE`) take exclusive row locks held
//! until commit/rollback (strict two-phase locking). Readers run at
//! read-committed isolation without locks. Deadlocks are detected by cycle
//! search over the wait-for graph; the requesting transaction is the victim
//! and receives [`EngineError::Deadlock`].
//!
//! The resource→owner table is split over [`LOCK_STRIPES`] independently
//! locked stripes keyed by resource hash, so uncontended acquisitions on
//! different rows never serialize against each other; per-transaction
//! owned-sets are likewise sharded by transaction id. Only the *blocking*
//! path — an actual owner conflict — falls back to the single wait-for
//! graph mutex, whose condvar serializes waiters (DESIGN.md §13 covers the
//! lock ordering: waiting lock, then stripe lock, never the reverse).

use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::error::{EngineError, Result};
use crate::row::RowId;
use crate::wal::InternalTxnId;

/// Stripes of the resource→owner table. Row accesses hash uniformly, so a
/// modest power of two keeps the uncontended fast path collision-free for
/// the thread counts the bench drives (≤ 16) without bloating the struct.
const LOCK_STRIPES: usize = 16;

/// Shards of the per-transaction owned-resource sets, keyed by transaction
/// id — concurrent transactions release in bulk without sharing a lock.
const OWNED_SHARDS: usize = 16;

/// A lockable resource.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ResourceId {
    /// One row of a table.
    Row(String, RowId),
    /// A whole table (used by DDL).
    Table(String),
}

/// True when following wait-edges from `from` reaches `target`.
fn reaches(
    waits_for: &HashMap<InternalTxnId, InternalTxnId>,
    from: InternalTxnId,
    target: InternalTxnId,
) -> bool {
    let mut cur = from;
    let mut hops = 0;
    while let Some(&next) = waits_for.get(&cur) {
        if next == target {
            return true;
        }
        cur = next;
        hops += 1;
        if hops > waits_for.len() {
            return false; // defensive: malformed graph
        }
    }
    false
}

/// The lock manager shared by all sessions of a database.
#[derive(Debug)]
pub struct LockManager {
    /// Resource → owning transaction, striped by resource hash.
    stripes: Vec<Mutex<HashMap<ResourceId, InternalTxnId>>>,
    /// Transaction → resources it owns (for bulk release), sharded by
    /// transaction id.
    owned: Vec<Mutex<HashMap<InternalTxnId, HashSet<ResourceId>>>>,
    /// Waiter → the owner it waits on (single edge per waiter). This is
    /// the only global lock, taken exclusively on the blocking path.
    waiting: Mutex<HashMap<InternalTxnId, InternalTxnId>>,
    released: Condvar,
}

impl Default for LockManager {
    fn default() -> Self {
        Self {
            stripes: (0..LOCK_STRIPES).map(|_| Mutex::default()).collect(),
            owned: (0..OWNED_SHARDS).map(|_| Mutex::default()).collect(),
            waiting: Mutex::default(),
            released: Condvar::new(),
        }
    }
}

impl LockManager {
    /// Creates an empty manager.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    fn stripe(&self, res: &ResourceId) -> &Mutex<HashMap<ResourceId, InternalTxnId>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        res.hash(&mut h);
        &self.stripes[(h.finish() as usize) % self.stripes.len()]
    }

    fn owned_shard(
        &self,
        txn: InternalTxnId,
    ) -> &Mutex<HashMap<InternalTxnId, HashSet<ResourceId>>> {
        &self.owned[(txn.0 as usize) % self.owned.len()]
    }

    /// Acquires an exclusive lock on `res` for `txn`, blocking while another
    /// transaction holds it.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Deadlock`] when waiting would close a cycle in
    /// the wait-for graph (the caller must roll the transaction back), and
    /// after a generous timeout as a safety net.
    pub fn lock_exclusive(&self, txn: InternalTxnId, res: ResourceId) -> Result<()> {
        loop {
            // Fast path: one stripe lock, no global state touched.
            {
                let mut stripe = self.stripe(&res).lock();
                match stripe.get(&res) {
                    None => {
                        stripe.insert(res.clone(), txn);
                        drop(stripe);
                        // A transaction runs on one thread, so its own
                        // release_all cannot race this bookkeeping.
                        self.owned_shard(txn)
                            .lock()
                            .entry(txn)
                            .or_default()
                            .insert(res);
                        return Ok(());
                    }
                    Some(&owner) if owner == txn => return Ok(()),
                    Some(_) => {}
                }
            }
            // Blocking path: register a wait-for edge and sleep. The owner
            // is re-read under the waiting lock so a release between the
            // fast path and here cannot strand us (release_all clears the
            // stripe entry *before* taking the waiting lock to notify).
            let mut waiting = self.waiting.lock();
            let owner = match self.stripe(&res).lock().get(&res) {
                None => continue, // released meanwhile: retry the fast path
                Some(&owner) if owner == txn => return Ok(()),
                Some(&owner) => owner,
            };
            if reaches(&waiting, owner, txn) {
                return Err(EngineError::Deadlock);
            }
            waiting.insert(txn, owner);
            let timed_out = self
                .released
                .wait_for(&mut waiting, Duration::from_secs(10))
                .timed_out();
            waiting.remove(&txn);
            if timed_out {
                return Err(EngineError::Deadlock);
            }
        }
    }

    /// Releases every lock held by `txn` and wakes all waiters.
    pub fn release_all(&self, txn: InternalTxnId) {
        let resources = self.owned_shard(txn).lock().remove(&txn);
        if let Some(resources) = resources {
            for r in resources {
                self.stripe(&r).lock().remove(&r);
            }
        }
        let mut waiting = self.waiting.lock();
        waiting.remove(&txn);
        drop(waiting);
        self.released.notify_all();
    }

    /// Number of locks currently held by `txn` (diagnostics).
    pub fn held_by(&self, txn: InternalTxnId) -> usize {
        self.owned_shard(txn)
            .lock()
            .get(&txn)
            .map_or(0, |s| s.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn row(id: u64) -> ResourceId {
        ResourceId::Row("t".into(), RowId(id))
    }

    #[test]
    fn reentrant_lock_is_free() {
        let lm = LockManager::new();
        lm.lock_exclusive(InternalTxnId(1), row(1)).unwrap();
        lm.lock_exclusive(InternalTxnId(1), row(1)).unwrap();
        assert_eq!(lm.held_by(InternalTxnId(1)), 1);
    }

    #[test]
    fn release_unblocks_waiter() {
        let lm = LockManager::new();
        lm.lock_exclusive(InternalTxnId(1), row(1)).unwrap();
        let lm2 = Arc::clone(&lm);
        let handle = thread::spawn(move || lm2.lock_exclusive(InternalTxnId(2), row(1)));
        thread::sleep(Duration::from_millis(50));
        lm.release_all(InternalTxnId(1));
        handle.join().unwrap().unwrap();
        assert_eq!(lm.held_by(InternalTxnId(2)), 1);
    }

    #[test]
    fn two_party_deadlock_is_detected() {
        let lm = LockManager::new();
        lm.lock_exclusive(InternalTxnId(1), row(1)).unwrap();
        lm.lock_exclusive(InternalTxnId(2), row(2)).unwrap();
        let lm2 = Arc::clone(&lm);
        // txn 2 waits for row 1 (held by txn 1).
        let handle = thread::spawn(move || {
            let r = lm2.lock_exclusive(InternalTxnId(2), row(1));
            lm2.release_all(InternalTxnId(2));
            r
        });
        thread::sleep(Duration::from_millis(50));
        // txn 1 requesting row 2 closes the cycle and must fail fast.
        let err = lm.lock_exclusive(InternalTxnId(1), row(2)).unwrap_err();
        assert_eq!(err, EngineError::Deadlock);
        lm.release_all(InternalTxnId(1));
        handle.join().unwrap().unwrap();
    }

    #[test]
    fn release_all_clears_everything() {
        let lm = LockManager::new();
        lm.lock_exclusive(InternalTxnId(1), row(1)).unwrap();
        lm.lock_exclusive(InternalTxnId(1), row(2)).unwrap();
        lm.release_all(InternalTxnId(1));
        assert_eq!(lm.held_by(InternalTxnId(1)), 0);
        // Another txn can take the rows immediately.
        lm.lock_exclusive(InternalTxnId(2), row(1)).unwrap();
    }

    #[test]
    fn table_and_row_locks_are_distinct_resources() {
        let lm = LockManager::new();
        lm.lock_exclusive(InternalTxnId(1), ResourceId::Table("t".into()))
            .unwrap();
        // A row in `t` is a separate resource in this manager.
        lm.lock_exclusive(InternalTxnId(2), row(1)).unwrap();
    }
}
