//! Heap-table storage: pages, a row-id directory and a primary-key index.

use std::collections::{BTreeMap, HashMap};

use resildb_sim::{PageKey, SimContext};

use crate::error::{EngineError, Result};
use crate::page::{Page, Slot};
use crate::row::{decode_row, encode_row, Row, RowId};
use crate::schema::TableSchema;
use crate::value::Value;

/// Physical location of a row operation, recorded into the WAL exactly the
/// way the paper's DBMSs log it: logical page number + offset within page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowLocation {
    /// Page number within the table's heap.
    pub page: u64,
    /// Byte offset within the page *at the time of the operation*.
    pub offset: usize,
    /// Row image length in bytes.
    pub len: usize,
}

/// A heap table: schema + pages + indexes.
#[derive(Debug)]
pub struct Table {
    schema: TableSchema,
    /// Object id used for buffer-pool page keys.
    object_id: u32,
    pages: Vec<Page>,
    /// RowId → page number (offsets live in the page's slot directory).
    directory: HashMap<RowId, u64>,
    /// Order-preserving serialized PK → RowId (only when the schema has a
    /// primary key). Ordered so equality on a key *prefix* can be served
    /// as a range scan — the access path TPC-C's district-scoped queries
    /// rely on.
    pk_index: BTreeMap<Vec<u8>, RowId>,
    next_rowid: u64,
    next_identity: i64,
    row_count: u64,
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: TableSchema, object_id: u32) -> Self {
        Self {
            schema,
            object_id,
            pages: Vec::new(),
            directory: HashMap::new(),
            pk_index: BTreeMap::new(),
            next_rowid: 1,
            next_identity: 1,
            row_count: 0,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The buffer-pool object id.
    pub fn object_id(&self) -> u32 {
        self.object_id
    }

    /// Number of live rows.
    pub fn row_count(&self) -> u64 {
        self.row_count
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Serialises the primary-key values of `row` into an index key.
    /// Returns `None` when the table has no primary key.
    fn pk_key(&self, row: &Row) -> Option<Vec<u8>> {
        if self.schema.primary_key.is_empty() {
            return None;
        }
        let mut key = Vec::new();
        for &i in &self.schema.primary_key {
            encode_key_part(&row.0[i], &mut key);
        }
        Some(key)
    }

    /// Serialises a caller-supplied key-value list (in PK column order)
    /// with the same order-preserving encoding the index uses.
    pub fn pk_key_for(&self, values: &[Value]) -> Vec<u8> {
        let mut key = Vec::new();
        for v in values {
            encode_key_part(v, &mut key);
        }
        key
    }

    /// Looks up a row id by full primary key values (in PK column order).
    pub fn lookup_pk(&self, values: &[Value]) -> Option<RowId> {
        self.pk_index.get(&self.pk_key_for(values)).copied()
    }

    /// All row ids whose primary key starts with `values` (a prefix of the
    /// PK columns, in key order) — an index range scan.
    pub fn lookup_pk_prefix(&self, values: &[Value]) -> Vec<RowId> {
        let prefix = self.pk_key_for(values);
        self.pk_index
            .range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&prefix))
            .map(|(_, rid)| *rid)
            .collect()
    }

    /// Validates NOT NULL constraints and fills the identity column when
    /// its value is absent/NULL. Returns the (possibly modified) row.
    fn prepare_insert(&mut self, mut row: Row) -> Result<Row> {
        if row.len() != self.schema.columns.len() {
            return Err(EngineError::Constraint(format!(
                "INSERT supplies {} values for {} columns of {}",
                row.len(),
                self.schema.columns.len(),
                self.schema.name
            )));
        }
        if let Some(idx) = self.schema.identity_column() {
            if row.0[idx].is_null() {
                row.0[idx] = Value::Int(self.next_identity);
                self.next_identity += 1;
            } else if let Value::Int(v) = row.0[idx] {
                self.next_identity = self.next_identity.max(v + 1);
            }
        }
        for (col, v) in self.schema.columns.iter().zip(row.values()) {
            if col.not_null && v.is_null() {
                return Err(EngineError::Constraint(format!(
                    "column {}.{} is NOT NULL",
                    self.schema.name, col.name
                )));
            }
        }
        // Coerce values to column storage types.
        let coerced: Result<Vec<Value>> = self
            .schema
            .columns
            .iter()
            .zip(row.0)
            .map(|(c, v)| v.coerce_to(c.ty))
            .collect();
        Ok(Row(coerced?))
    }

    /// Inserts `row`, returning its new id, the row as actually stored
    /// (identity filled, values coerced) and its physical location.
    ///
    /// Charges one page write to `sim`.
    ///
    /// # Errors
    ///
    /// Constraint violations (arity, NOT NULL, duplicate key) and encoding
    /// failures.
    pub fn insert(&mut self, row: Row, sim: &SimContext) -> Result<(RowId, Row, RowLocation)> {
        let row = self.prepare_insert(row)?;
        if let Some(key) = self.pk_key(&row) {
            if self.pk_index.contains_key(&key) {
                return Err(EngineError::DuplicateKey(format!(
                    "{} primary key {key:?}",
                    self.schema.name
                )));
            }
        }
        let image = encode_row(&self.schema, &row)?;
        let rowid = RowId(self.next_rowid);
        self.next_rowid += 1;
        // Find a page with space (last page first — heap append behaviour).
        let page_no = match self.pages.last() {
            Some(p) if p.free_space() >= image.len() => self.pages.len() as u64 - 1,
            _ => {
                self.pages.push(Page::new());
                self.pages.len() as u64 - 1
            }
        };
        let offset = self.pages[page_no as usize].insert(rowid, &image);
        self.directory.insert(rowid, page_no);
        if let Some(key) = self.pk_key(&row) {
            self.pk_index.insert(key, rowid);
        }
        self.row_count += 1;
        sim.charge_page_write(PageKey::new(self.object_id, page_no));
        Ok((
            rowid,
            row,
            RowLocation {
                page: page_no,
                offset,
                len: image.len(),
            },
        ))
    }

    /// Re-inserts a row under a *specific* row id — used by transaction
    /// rollback and crash recovery, where the original identity of the row
    /// must be preserved (unlike SQL-level compensation, which deliberately
    /// goes through [`Self::insert`] and gets a fresh id, exercising the
    /// paper's row-id remapping).
    ///
    /// # Errors
    ///
    /// Fails if `rowid` is already live or the primary key collides.
    pub fn insert_with_rowid(
        &mut self,
        rowid: RowId,
        row: Row,
        sim: &SimContext,
    ) -> Result<RowLocation> {
        if self.directory.contains_key(&rowid) {
            return Err(EngineError::Internal(format!("{rowid} already live")));
        }
        if let Some(key) = self.pk_key(&row) {
            if self.pk_index.contains_key(&key) {
                return Err(EngineError::DuplicateKey(format!(
                    "{} primary key {key:?}",
                    self.schema.name
                )));
            }
        }
        let image = encode_row(&self.schema, &row)?;
        self.next_rowid = self.next_rowid.max(rowid.0 + 1);
        if let Some(idx) = self.schema.identity_column() {
            if let Some(Value::Int(v)) = row.get(idx) {
                self.next_identity = self.next_identity.max(v + 1);
            }
        }
        let page_no = match self.pages.last() {
            Some(p) if p.free_space() >= image.len() => self.pages.len() as u64 - 1,
            _ => {
                self.pages.push(Page::new());
                self.pages.len() as u64 - 1
            }
        };
        let offset = self.pages[page_no as usize].insert(rowid, &image);
        self.directory.insert(rowid, page_no);
        if let Some(key) = self.pk_key(&row) {
            self.pk_index.insert(key, rowid);
        }
        self.row_count += 1;
        sim.charge_page_write(PageKey::new(self.object_id, page_no));
        Ok(RowLocation {
            page: page_no,
            offset,
            len: image.len(),
        })
    }

    /// Restores a deleted row at the *exact* physical location it occupied
    /// before the delete — the rollback path. Unlike
    /// [`Self::insert_with_rowid`], which appends to the last page, this
    /// splices the image back where it was so an aborted transaction's
    /// page churn is fully reversed. Required by the Sybase repair
    /// algorithm (paper §4.3): it resolves logged offsets against the
    /// current page, and a rolled-back transaction — which left no log
    /// records — must therefore leave no physical footprint either.
    ///
    /// # Errors
    ///
    /// Fails if `rowid` is already live, the primary key collides, the
    /// image width differs from the recorded slot, or `loc` no longer
    /// names a valid splice point.
    pub fn restore_at(
        &mut self,
        rowid: RowId,
        row: Row,
        loc: RowLocation,
        sim: &SimContext,
    ) -> Result<()> {
        if self.directory.contains_key(&rowid) {
            return Err(EngineError::Internal(format!("{rowid} already live")));
        }
        if let Some(key) = self.pk_key(&row) {
            if self.pk_index.contains_key(&key) {
                return Err(EngineError::DuplicateKey(format!(
                    "{} primary key {key:?}",
                    self.schema.name
                )));
            }
        }
        let image = encode_row(&self.schema, &row)?;
        if image.len() != loc.len {
            return Err(EngineError::Internal(format!(
                "restore_at image width {} != recorded {}",
                image.len(),
                loc.len
            )));
        }
        let page = self
            .pages
            .get_mut(loc.page as usize)
            .ok_or_else(|| EngineError::Internal(format!("restore_at page {} gone", loc.page)))?;
        page.insert_at(rowid, &image, loc.offset);
        self.next_rowid = self.next_rowid.max(rowid.0 + 1);
        self.directory.insert(rowid, loc.page);
        if let Some(key) = self.pk_key(&row) {
            self.pk_index.insert(key, rowid);
        }
        self.row_count += 1;
        sim.charge_page_write(PageKey::new(self.object_id, loc.page));
        Ok(())
    }

    /// Reads the current contents of `rowid` (charging a page read).
    pub fn get(&self, rowid: RowId, sim: &SimContext) -> Result<Option<Row>> {
        let Some(&page_no) = self.directory.get(&rowid) else {
            return Ok(None);
        };
        sim.charge_page_read(PageKey::new(self.object_id, page_no));
        let page = &self.pages[page_no as usize];
        let Some(image) = page.image_of(rowid) else {
            return Ok(None);
        };
        decode_row(&self.schema, image).map(Some)
    }

    /// Deletes `rowid`, returning the deleted row and the location it
    /// occupied. Later rows in the page migrate down (Sybase rule).
    pub fn delete(&mut self, rowid: RowId, sim: &SimContext) -> Result<Option<(Row, RowLocation)>> {
        let Some(&page_no) = self.directory.get(&rowid) else {
            return Ok(None);
        };
        let page = &mut self.pages[page_no as usize];
        let image = page
            .image_of(rowid)
            .ok_or_else(|| EngineError::Internal(format!("directory stale for {rowid}")))?
            .to_vec();
        let row = decode_row(&self.schema, &image)?;
        let slot: Slot = page
            .delete(rowid)
            .ok_or_else(|| EngineError::Internal(format!("directory stale for {rowid}")))?;
        self.directory.remove(&rowid);
        if let Some(key) = self.pk_key(&row) {
            self.pk_index.remove(&key);
        }
        self.row_count -= 1;
        sim.charge_page_write(PageKey::new(self.object_id, page_no));
        Ok(Some((
            row,
            RowLocation {
                page: page_no,
                offset: slot.offset,
                len: slot.len,
            },
        )))
    }

    /// Replaces `rowid`'s contents with `new_row` (same schema width, so
    /// strictly in place). Returns `(old_row, stored_new_row, location)`.
    pub fn update(
        &mut self,
        rowid: RowId,
        new_row: Row,
        sim: &SimContext,
    ) -> Result<Option<(Row, Row, RowLocation)>> {
        let Some(&page_no) = self.directory.get(&rowid) else {
            return Ok(None);
        };
        let new_row = {
            // Re-run constraint checks (arity/NOT NULL/coercion).
            let coerced: Result<Vec<Value>> = self
                .schema
                .columns
                .iter()
                .zip(new_row.0)
                .map(|(c, v)| {
                    if c.not_null && v.is_null() {
                        Err(EngineError::Constraint(format!(
                            "column {}.{} is NOT NULL",
                            self.schema.name, c.name
                        )))
                    } else {
                        v.coerce_to(c.ty)
                    }
                })
                .collect();
            Row(coerced?)
        };
        let page = &mut self.pages[page_no as usize];
        let old_image = page
            .image_of(rowid)
            .ok_or_else(|| EngineError::Internal(format!("directory stale for {rowid}")))?
            .to_vec();
        let old_row = decode_row(&self.schema, &old_image)?;
        // Maintain the PK index if key columns changed.
        let old_key = self.pk_key(&old_row);
        let new_key = self.pk_key(&new_row);
        if old_key != new_key {
            if let Some(nk) = &new_key {
                if self.pk_index.contains_key(nk) {
                    return Err(EngineError::DuplicateKey(format!(
                        "{} primary key {nk:?}",
                        self.schema.name
                    )));
                }
            }
        }
        let image = encode_row(&self.schema, &new_row)?;
        let page = &mut self.pages[page_no as usize];
        let slot = page
            .update(rowid, &image)
            .ok_or_else(|| EngineError::Internal(format!("directory stale for {rowid}")))?;
        if old_key != new_key {
            if let Some(ok) = old_key {
                self.pk_index.remove(&ok);
            }
            if let Some(nk) = new_key {
                self.pk_index.insert(nk, rowid);
            }
        }
        sim.charge_page_write(PageKey::new(self.object_id, page_no));
        Ok(Some((
            old_row,
            new_row,
            RowLocation {
                page: page_no,
                offset: slot.offset,
                len: slot.len,
            },
        )))
    }

    /// Scans all rows in storage order, charging one page read per page.
    /// The callback receives `(rowid, row)`.
    pub fn scan(
        &self,
        sim: &SimContext,
        mut f: impl FnMut(RowId, Row) -> Result<()>,
    ) -> Result<()> {
        for (page_no, page) in self.pages.iter().enumerate() {
            if page.row_count() == 0 {
                continue;
            }
            sim.charge_page_read(PageKey::new(self.object_id, page_no as u64));
            for slot in page.slots() {
                let image = page
                    .read_at(slot.offset, slot.len)
                    .ok_or_else(|| EngineError::Internal("corrupt slot".into()))?;
                f(slot.rowid, decode_row(&self.schema, image)?)?;
            }
        }
        Ok(())
    }

    /// Reads raw bytes from a page — the `dbcc page` primitive used by the
    /// Sybase-flavor repair path.
    pub fn read_page_bytes(&self, page: u64, offset: usize, len: usize) -> Option<&[u8]> {
        self.pages.get(page as usize)?.read_at(offset, len)
    }

    /// Current slot of `rowid` (page + offset), for diagnostics and tests.
    pub fn locate(&self, rowid: RowId) -> Option<RowLocation> {
        let &page_no = self.directory.get(&rowid)?;
        let slot = self.pages[page_no as usize].slot_of(rowid)?;
        Some(RowLocation {
            page: page_no,
            offset: slot.offset,
            len: slot.len,
        })
    }

    /// All live row ids (unordered).
    pub fn row_ids(&self) -> Vec<RowId> {
        self.directory.keys().copied().collect()
    }
}

/// Appends an order-preserving encoding of `v`: byte-wise comparison of
/// encoded keys matches SQL value ordering within each type (type tags
/// keep mixed-type keys from colliding).
fn encode_key_part(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0x00),
        Value::Int(i) => {
            out.push(0x01);
            out.extend_from_slice(&((*i as u64) ^ (1 << 63)).to_be_bytes());
        }
        Value::Float(f) => {
            out.push(0x02);
            let bits = f.to_bits();
            let ordered = if bits & (1 << 63) != 0 {
                !bits
            } else {
                bits ^ (1 << 63)
            };
            out.extend_from_slice(&ordered.to_be_bytes());
        }
        Value::Bool(b) => {
            out.push(0x03);
            out.push(u8::from(*b));
        }
        Value::Str(s) => {
            out.push(0x04);
            out.extend_from_slice(s.as_bytes());
            out.push(0x00);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(sql: &str) -> Table {
        let stmt = resildb_sql::parse_statement(sql).unwrap();
        let resildb_sql::Statement::CreateTable(c) = stmt else {
            unreachable!()
        };
        Table::new(TableSchema::from_create(&c).unwrap(), 7)
    }

    fn sim() -> SimContext {
        SimContext::free()
    }

    fn row(vals: Vec<Value>) -> Row {
        Row::new(vals)
    }

    #[test]
    fn insert_get_round_trip() {
        let mut t = table("CREATE TABLE t (a INTEGER PRIMARY KEY, b VARCHAR(8))");
        let s = sim();
        let (rid, _, loc) = t
            .insert(row(vec![Value::Int(1), Value::from("x")]), &s)
            .unwrap();
        assert_eq!(loc.page, 0);
        assert_eq!(loc.offset, 0);
        let got = t.get(rid, &s).unwrap().unwrap();
        assert_eq!(got.0, vec![Value::Int(1), Value::from("x")]);
        assert_eq!(t.row_count(), 1);
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = table("CREATE TABLE t (a INTEGER PRIMARY KEY)");
        let s = sim();
        t.insert(row(vec![Value::Int(1)]), &s).unwrap();
        let err = t.insert(row(vec![Value::Int(1)]), &s).unwrap_err();
        assert!(matches!(err, EngineError::DuplicateKey(_)));
    }

    #[test]
    fn not_null_enforced() {
        let mut t = table("CREATE TABLE t (a INTEGER NOT NULL)");
        let err = t.insert(row(vec![Value::Null]), &sim()).unwrap_err();
        assert!(matches!(err, EngineError::Constraint(_)));
    }

    #[test]
    fn identity_fills_and_advances() {
        let mut t = table("CREATE TABLE t (a INTEGER, rid INTEGER IDENTITY)");
        let s = sim();
        let (r1, _, _) = t
            .insert(row(vec![Value::Int(10), Value::Null]), &s)
            .unwrap();
        let (r2, _, _) = t
            .insert(row(vec![Value::Int(20), Value::Null]), &s)
            .unwrap();
        assert_eq!(t.get(r1, &s).unwrap().unwrap().0[1], Value::Int(1));
        assert_eq!(t.get(r2, &s).unwrap().unwrap().0[1], Value::Int(2));
        // Explicit value bumps the counter past itself.
        t.insert(row(vec![Value::Int(30), Value::Int(10)]), &s)
            .unwrap();
        let (r4, _, _) = t
            .insert(row(vec![Value::Int(40), Value::Null]), &s)
            .unwrap();
        assert_eq!(t.get(r4, &s).unwrap().unwrap().0[1], Value::Int(11));
    }

    #[test]
    fn update_in_place_and_pk_reindex() {
        let mut t = table("CREATE TABLE t (a INTEGER PRIMARY KEY, b VARCHAR(8))");
        let s = sim();
        let (rid, _, loc0) = t
            .insert(row(vec![Value::Int(1), Value::from("x")]), &s)
            .unwrap();
        let (old, new, loc1) = t
            .update(rid, row(vec![Value::Int(2), Value::from("y")]), &s)
            .unwrap()
            .unwrap();
        assert_eq!(new.0[0], Value::Int(2));
        assert_eq!(old.0[0], Value::Int(1));
        assert_eq!(loc0, loc1, "update is strictly in place");
        assert_eq!(t.lookup_pk(&[Value::Int(2)]), Some(rid));
        assert_eq!(t.lookup_pk(&[Value::Int(1)]), None);
    }

    #[test]
    fn delete_returns_old_row_and_updates_indexes() {
        let mut t = table("CREATE TABLE t (a INTEGER PRIMARY KEY)");
        let s = sim();
        let (rid, _, _) = t.insert(row(vec![Value::Int(5)]), &s).unwrap();
        let (deleted, _) = t.delete(rid, &s).unwrap().unwrap();
        assert_eq!(deleted.0[0], Value::Int(5));
        assert!(t.get(rid, &s).unwrap().is_none());
        assert_eq!(t.lookup_pk(&[Value::Int(5)]), None);
        assert_eq!(t.row_count(), 0);
        assert!(t.delete(rid, &s).unwrap().is_none());
    }

    #[test]
    fn rows_spill_onto_new_pages() {
        let mut t = table("CREATE TABLE t (a INTEGER, b VARCHAR(200))");
        let s = sim();
        // Each row ~220 bytes; 8K page holds ~37.
        for i in 0..100 {
            t.insert(row(vec![Value::Int(i), Value::from("p")]), &s)
                .unwrap();
        }
        assert!(t.page_count() >= 2, "pages: {}", t.page_count());
        let mut seen = 0;
        t.scan(&s, |_, _| {
            seen += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, 100);
    }

    #[test]
    fn scan_charges_page_reads() {
        let mut t = table("CREATE TABLE t (a INTEGER)");
        let s = SimContext::new(resildb_sim::CostModel::disk_bound_oltp(), 64);
        t.insert(row(vec![Value::Int(1)]), &s).unwrap();
        let misses_before = s.stats().page_misses.get() + s.stats().page_hits.get();
        t.scan(&s, |_, _| Ok(())).unwrap();
        assert!(s.stats().page_misses.get() + s.stats().page_hits.get() > misses_before);
    }

    #[test]
    fn pk_prefix_lookup_returns_matching_rows_only() {
        let mut t =
            table("CREATE TABLE ol (w INTEGER, d INTEGER, o INTEGER, PRIMARY KEY (w, d, o))");
        let s = sim();
        for w in 1..=2 {
            for d in 1..=3 {
                for o in 1..=4 {
                    t.insert(row(vec![Value::Int(w), Value::Int(d), Value::Int(o)]), &s)
                        .unwrap();
                }
            }
        }
        assert_eq!(t.lookup_pk_prefix(&[Value::Int(1)]).len(), 12);
        assert_eq!(t.lookup_pk_prefix(&[Value::Int(2), Value::Int(3)]).len(), 4);
        assert_eq!(
            t.lookup_pk_prefix(&[Value::Int(2), Value::Int(3), Value::Int(4)])
                .len(),
            1
        );
        assert!(t.lookup_pk_prefix(&[Value::Int(9)]).is_empty());
    }

    #[test]
    fn pk_prefix_lookup_is_not_fooled_by_numeric_text_ordering() {
        // "10" < "9" lexicographically; the order-preserving encoding must
        // not mix id 1 prefixes into id 10, etc.
        let mut t = table("CREATE TABLE t2 (a INTEGER, b INTEGER, PRIMARY KEY (a, b))");
        let s = sim();
        for a in [1, 9, 10, 100] {
            t.insert(row(vec![Value::Int(a), Value::Int(1)]), &s)
                .unwrap();
        }
        assert_eq!(t.lookup_pk_prefix(&[Value::Int(1)]).len(), 1);
        assert_eq!(t.lookup_pk_prefix(&[Value::Int(10)]).len(), 1);
        // Negative keys order below positive ones.
        t.insert(row(vec![Value::Int(-5), Value::Int(1)]), &s)
            .unwrap();
        assert_eq!(t.lookup_pk_prefix(&[Value::Int(-5)]).len(), 1);
    }

    #[test]
    fn dbcc_style_page_read() {
        let mut t = table("CREATE TABLE t (a INTEGER)");
        let s = sim();
        let (_, _, loc) = t.insert(row(vec![Value::Int(9)]), &s).unwrap();
        let bytes = t.read_page_bytes(loc.page, loc.offset, loc.len).unwrap();
        let decoded = decode_row(t.schema(), bytes).unwrap();
        assert_eq!(decoded.0[0], Value::Int(9));
    }
}
