//! Simulated slotted data pages with Sybase-style compaction.
//!
//! The paper's §4.3 Sybase repair algorithm depends on one physical detail:
//! *when a row is deleted from the middle of a page, all rows closer to the
//! end of the page move toward the beginning, leaving no gaps; rows never
//! migrate between pages.* This module implements exactly that layout so
//! the repair crate's offset-adjustment algorithm has a faithful substrate
//! to run against.

use crate::row::RowId;

/// Size of one simulated data page in bytes (all three flavors were
/// configured with 8 KB blocks in the paper's evaluation).
pub const PAGE_SIZE: usize = 8192;

/// Location of a row's bytes inside one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// The row stored at this slot.
    pub rowid: RowId,
    /// Byte offset of the row image within the page.
    pub offset: usize,
    /// Length of the row image in bytes.
    pub len: usize,
}

/// One data page: a compacted run of row images starting at offset 0.
#[derive(Debug, Clone, Default)]
pub struct Page {
    bytes: Vec<u8>,
    slots: Vec<Slot>,
}

impl Page {
    /// Creates an empty page.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes still available.
    pub fn free_space(&self) -> usize {
        PAGE_SIZE - self.bytes.len()
    }

    /// Number of rows stored.
    pub fn row_count(&self) -> usize {
        self.slots.len()
    }

    /// The slot directory, ordered by offset.
    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    /// Appends a row image, returning its offset.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit — callers check
    /// [`Self::free_space`] first.
    pub fn insert(&mut self, rowid: RowId, image: &[u8]) -> usize {
        assert!(
            image.len() <= self.free_space(),
            "page overflow: {} > {}",
            image.len(),
            self.free_space()
        );
        let offset = self.bytes.len();
        self.bytes.extend_from_slice(image);
        self.slots.push(Slot {
            rowid,
            offset,
            len: image.len(),
        });
        offset
    }

    /// Splices a row image back in at a specific `offset` — the exact
    /// inverse of [`Self::delete`]. Rows at or past `offset` migrate up to
    /// make room, restoring the layout that existed before the matching
    /// delete. Transaction rollback needs this: an aborted transaction
    /// leaves no log records, so it must also leave the physical layout
    /// untouched or the Sybase offset-recovery algorithm (paper §4.3)
    /// would resolve logged offsets against a silently shuffled page.
    ///
    /// # Panics
    ///
    /// Panics if the image does not fit or `offset` is past the end of the
    /// packed region — both indicate a corrupted undo record.
    pub fn insert_at(&mut self, rowid: RowId, image: &[u8], offset: usize) {
        assert!(
            image.len() <= self.free_space(),
            "page overflow: {} > {}",
            image.len(),
            self.free_space()
        );
        assert!(
            offset <= self.bytes.len(),
            "insert_at offset {offset} past packed region {}",
            self.bytes.len()
        );
        self.bytes.splice(offset..offset, image.iter().copied());
        for s in &mut self.slots {
            if s.offset >= offset {
                s.offset += image.len();
            }
        }
        let idx = self
            .slots
            .iter()
            .position(|s| s.offset > offset)
            .unwrap_or(self.slots.len());
        self.slots.insert(
            idx,
            Slot {
                rowid,
                offset,
                len: image.len(),
            },
        );
    }

    /// Removes `rowid`, compacting the page per the Sybase migration rule.
    /// Returns the slot the row occupied *before* removal.
    pub fn delete(&mut self, rowid: RowId) -> Option<Slot> {
        let idx = self.slots.iter().position(|s| s.rowid == rowid)?;
        let slot = self.slots.remove(idx);
        self.bytes.drain(slot.offset..slot.offset + slot.len);
        for s in &mut self.slots {
            if s.offset > slot.offset {
                s.offset -= slot.len;
            }
        }
        Some(slot)
    }

    /// Overwrites `rowid`'s image in place. The new image must have the
    /// same length (row widths are schema-constant — see
    /// [`crate::schema::TableSchema::row_width`]). Returns the slot.
    pub fn update(&mut self, rowid: RowId, image: &[u8]) -> Option<Slot> {
        let slot = *self.slots.iter().find(|s| s.rowid == rowid)?;
        assert_eq!(
            slot.len,
            image.len(),
            "in-place update must preserve row length"
        );
        self.bytes[slot.offset..slot.offset + slot.len].copy_from_slice(image);
        Some(slot)
    }

    /// Reads `len` bytes at `offset` — the `dbcc page` primitive. Returns
    /// `None` when the range is out of bounds.
    pub fn read_at(&self, offset: usize, len: usize) -> Option<&[u8]> {
        self.bytes.get(offset..offset + len)
    }

    /// The current image of `rowid`, if resident.
    pub fn image_of(&self, rowid: RowId) -> Option<&[u8]> {
        let slot = self.slots.iter().find(|s| s.rowid == rowid)?;
        self.read_at(slot.offset, slot.len)
    }

    /// The slot currently holding `rowid`.
    pub fn slot_of(&self, rowid: RowId) -> Option<Slot> {
        self.slots.iter().copied().find(|s| s.rowid == rowid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img(byte: u8, len: usize) -> Vec<u8> {
        vec![byte; len]
    }

    #[test]
    fn insert_appends_contiguously() {
        let mut p = Page::new();
        assert_eq!(p.insert(RowId(1), &img(1, 10)), 0);
        assert_eq!(p.insert(RowId(2), &img(2, 20)), 10);
        assert_eq!(p.insert(RowId(3), &img(3, 5)), 30);
        assert_eq!(p.free_space(), PAGE_SIZE - 35);
        assert_eq!(p.row_count(), 3);
    }

    #[test]
    fn delete_compacts_and_shifts_later_rows() {
        let mut p = Page::new();
        p.insert(RowId(1), &img(1, 10));
        p.insert(RowId(2), &img(2, 20));
        p.insert(RowId(3), &img(3, 5));
        let removed = p.delete(RowId(2)).unwrap();
        assert_eq!((removed.offset, removed.len), (10, 20));
        // Row 3 migrated from offset 30 to offset 10; row 1 unmoved.
        assert_eq!(p.slot_of(RowId(3)).unwrap().offset, 10);
        assert_eq!(p.slot_of(RowId(1)).unwrap().offset, 0);
        assert_eq!(p.read_at(10, 5).unwrap(), &img(3, 5)[..]);
        // No gaps: total bytes = 15.
        assert_eq!(p.free_space(), PAGE_SIZE - 15);
    }

    #[test]
    fn insert_at_is_the_inverse_of_delete() {
        let mut p = Page::new();
        p.insert(RowId(1), &img(1, 10));
        p.insert(RowId(2), &img(2, 20));
        p.insert(RowId(3), &img(3, 5));
        let before: Vec<Slot> = p.slots().to_vec();
        let removed = p.delete(RowId(2)).unwrap();
        p.insert_at(RowId(2), &img(2, 20), removed.offset);
        assert_eq!(p.slots(), &before[..]);
        assert_eq!(p.image_of(RowId(2)).unwrap(), &img(2, 20)[..]);
        assert_eq!(p.image_of(RowId(3)).unwrap(), &img(3, 5)[..]);
        assert_eq!(p.free_space(), PAGE_SIZE - 35);
    }

    #[test]
    fn insert_at_end_matches_plain_insert() {
        let mut p = Page::new();
        p.insert(RowId(1), &img(1, 10));
        p.insert_at(RowId(2), &img(2, 8), 10);
        assert_eq!(p.slot_of(RowId(2)).unwrap().offset, 10);
        assert_eq!(p.row_count(), 2);
        let mut expect = 0;
        for s in p.slots() {
            assert_eq!(s.offset, expect);
            expect += s.len;
        }
    }

    #[test]
    fn update_preserves_offset_and_length() {
        let mut p = Page::new();
        p.insert(RowId(1), &img(1, 10));
        p.insert(RowId(2), &img(2, 10));
        let slot = p.update(RowId(1), &img(9, 10)).unwrap();
        assert_eq!(slot.offset, 0);
        assert_eq!(p.image_of(RowId(1)).unwrap(), &img(9, 10)[..]);
        assert_eq!(p.slot_of(RowId(2)).unwrap().offset, 10);
    }

    #[test]
    #[should_panic(expected = "preserve row length")]
    fn update_with_different_length_panics() {
        let mut p = Page::new();
        p.insert(RowId(1), &img(1, 10));
        let _ = p.update(RowId(1), &img(1, 11));
    }

    #[test]
    fn read_out_of_bounds_is_none() {
        let mut p = Page::new();
        p.insert(RowId(1), &img(1, 10));
        assert!(p.read_at(5, 10).is_none());
        assert!(p.read_at(0, 10).is_some());
    }

    #[test]
    fn delete_missing_row_is_none() {
        let mut p = Page::new();
        assert!(p.delete(RowId(99)).is_none());
    }

    #[test]
    fn interleaved_delete_sequence_keeps_offsets_consistent() {
        let mut p = Page::new();
        for i in 0..8 {
            p.insert(RowId(i), &img(i as u8, 8));
        }
        p.delete(RowId(2));
        p.delete(RowId(5));
        // Remaining rows must be contiguous and in original order.
        let offsets: Vec<usize> = p.slots().iter().map(|s| s.offset).collect();
        let mut sorted = offsets.clone();
        sorted.sort_unstable();
        assert_eq!(offsets, sorted);
        let mut expect = 0;
        for s in p.slots() {
            assert_eq!(s.offset, expect);
            expect += s.len;
        }
        assert_eq!(p.row_count(), 6);
    }
}
