//! Runtime values and SQL comparison/arithmetic semantics.

use std::cmp::Ordering;
use std::fmt;

use crate::error::{EngineError, Result};

/// The storage type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    /// 64-bit signed integer (also backs `NUMERIC` and `TIMESTAMP`).
    Integer,
    /// 64-bit float.
    Float,
    /// Variable-length string with an optional declared maximum.
    Varchar(Option<u32>),
}

impl DataType {
    /// Maps a parsed SQL type to its storage type.
    pub fn from_type_name(t: &resildb_sql::TypeName) -> DataType {
        match t {
            resildb_sql::TypeName::Integer | resildb_sql::TypeName::Timestamp => DataType::Integer,
            // NUMERIC is stored as a float for simplicity; TPC-C money
            // amounts stay well within f64's exact-integer range.
            resildb_sql::TypeName::Float | resildb_sql::TypeName::Numeric { .. } => DataType::Float,
            resildb_sql::TypeName::Varchar(n) => DataType::Varchar(*n),
        }
    }

    /// The fixed on-page width (bytes) a value of this type occupies in the
    /// simulated page layout. Fixed widths keep in-place updates
    /// length-preserving, which matches Sybase's in-place `MODIFY`
    /// behaviour assumed by the paper's §4.3 offset algorithm.
    pub fn fixed_width(self) -> usize {
        match self {
            DataType::Integer | DataType::Float => 8,
            DataType::Varchar(Some(n)) => n as usize + 1, // length byte + padding
            DataType::Varchar(None) => 64,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Integer => f.write_str("INTEGER"),
            DataType::Float => f.write_str("FLOAT"),
            DataType::Varchar(Some(n)) => write!(f, "VARCHAR({n})"),
            DataType::Varchar(None) => f.write_str("TEXT"),
        }
    }
}

/// A runtime SQL value.
///
/// # Examples
///
/// ```
/// use resildb_engine::Value;
///
/// let sum = Value::Int(2).add(&Value::Float(0.5)).unwrap();
/// assert_eq!(sum, Value::Float(2.5));
/// assert!(Value::Null.add(&Value::Int(1)).unwrap().is_null());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean (result of predicates; storable too).
    Bool(bool),
    /// SQL NULL.
    Null,
}

impl Value {
    /// True iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interprets the value as a predicate outcome (SQL three-valued logic
    /// collapses UNKNOWN to false at the filter boundary).
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Int(v) => *v != 0,
            Value::Null => false,
            _ => false,
        }
    }

    /// Converts a literal from the AST.
    pub fn from_literal(l: &resildb_sql::Literal) -> Value {
        match l {
            resildb_sql::Literal::Int(v) => Value::Int(*v),
            resildb_sql::Literal::Float(v) => Value::Float(*v),
            resildb_sql::Literal::Str(s) => Value::Str(s.clone()),
            resildb_sql::Literal::Bool(b) => Value::Bool(*b),
            resildb_sql::Literal::Null => Value::Null,
        }
    }

    /// Renders this value as a SQL literal (used when generating
    /// compensating statements and LogMiner-style redo/undo SQL).
    pub fn to_sql_literal(&self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    format!("{v:.1}")
                } else {
                    format!("{v}")
                }
            }
            Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            Value::Null => "NULL".to_string(),
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// SQL comparison: `None` when either side is NULL (UNKNOWN), numeric
    /// coercion between Int and Float, error on cross-kind comparison.
    pub fn sql_cmp(&self, other: &Value) -> Result<Option<Ordering>> {
        if self.is_null() || other.is_null() {
            return Ok(None);
        }
        let ord = match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x
                    .partial_cmp(&y)
                    .ok_or_else(|| EngineError::Type("NaN comparison".into()))?,
                _ => {
                    return Err(EngineError::Type(format!(
                        "cannot compare {a:?} with {b:?}"
                    )))
                }
            },
        };
        Ok(Some(ord))
    }

    fn arith(
        &self,
        other: &Value,
        int_op: impl Fn(i64, i64) -> Option<i64>,
        f_op: impl Fn(f64, f64) -> f64,
        name: &str,
    ) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => int_op(*a, *b)
                .map(Value::Int)
                .ok_or_else(|| EngineError::Type(format!("integer {name} overflow or /0"))),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Ok(Value::Float(f_op(x, y))),
                _ => Err(EngineError::Type(format!("cannot {name} {a:?} and {b:?}"))),
            },
        }
    }

    /// SQL `+` with NULL propagation and Int/Float coercion.
    pub fn add(&self, other: &Value) -> Result<Value> {
        self.arith(other, i64::checked_add, |a, b| a + b, "add")
    }

    /// SQL `-`.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        self.arith(other, i64::checked_sub, |a, b| a - b, "subtract")
    }

    /// SQL `*`.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        self.arith(other, i64::checked_mul, |a, b| a * b, "multiply")
    }

    /// SQL `/` (errors on division by zero).
    pub fn div(&self, other: &Value) -> Result<Value> {
        if matches!(other, Value::Int(0)) || matches!(other, Value::Float(f) if *f == 0.0) {
            return Err(EngineError::Type("division by zero".into()));
        }
        self.arith(other, i64::checked_div, |a, b| a / b, "divide")
    }

    /// SQL `%`.
    pub fn rem(&self, other: &Value) -> Result<Value> {
        if matches!(other, Value::Int(0)) || matches!(other, Value::Float(f) if *f == 0.0) {
            return Err(EngineError::Type("modulo by zero".into()));
        }
        self.arith(other, i64::checked_rem, |a, b| a % b, "mod")
    }

    /// SQL `||` string concatenation (NULL-propagating).
    pub fn concat(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        Ok(Value::Str(format!(
            "{}{}",
            self.to_plain_string(),
            other.to_plain_string()
        )))
    }

    /// Unary minus.
    pub fn neg(&self) -> Result<Value> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(v) => v
                .checked_neg()
                .map(Value::Int)
                .ok_or_else(|| EngineError::Type("integer negation overflow".into())),
            Value::Float(v) => Ok(Value::Float(-v)),
            other => Err(EngineError::Type(format!("cannot negate {other:?}"))),
        }
    }

    /// Coerces this value to what column type `ty` stores; used on insert
    /// and update so stored data matches the schema.
    pub fn coerce_to(&self, ty: DataType) -> Result<Value> {
        match (self, ty) {
            (Value::Null, _) => Ok(Value::Null),
            (Value::Int(v), DataType::Integer) => Ok(Value::Int(*v)),
            (Value::Int(v), DataType::Float) => Ok(Value::Float(*v as f64)),
            (Value::Float(v), DataType::Float) => Ok(Value::Float(*v)),
            (Value::Float(v), DataType::Integer) if v.fract() == 0.0 => Ok(Value::Int(*v as i64)),
            (Value::Str(s), DataType::Varchar(limit)) => {
                if let Some(n) = limit {
                    if s.chars().count() > n as usize {
                        return Err(EngineError::Type(format!(
                            "string of length {} exceeds VARCHAR({n})",
                            s.chars().count()
                        )));
                    }
                }
                Ok(Value::Str(s.clone()))
            }
            (Value::Bool(b), DataType::Integer) => Ok(Value::Int(i64::from(*b))),
            (v, ty) => Err(EngineError::Type(format!("cannot store {v:?} as {ty}"))),
        }
    }

    /// Plain (unquoted) textual form, used for concatenation and display.
    pub fn to_plain_string(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            other => other.to_sql_literal(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_plain_string())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_propagates_through_arithmetic() {
        assert!(Value::Null.add(&Value::Int(1)).unwrap().is_null());
        assert!(Value::Int(1).mul(&Value::Null).unwrap().is_null());
        assert!(Value::Null.concat(&Value::from("x")).unwrap().is_null());
        assert!(Value::Null.neg().unwrap().is_null());
    }

    #[test]
    fn numeric_coercion_in_comparison() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.0)).unwrap(),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Float(1.5).sql_cmp(&Value::Int(2)).unwrap(),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn null_comparison_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)).unwrap(), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Null).unwrap(), None);
    }

    #[test]
    fn cross_kind_comparison_errors() {
        assert!(Value::Int(1).sql_cmp(&Value::from("x")).is_err());
    }

    #[test]
    fn division_by_zero_errors() {
        assert!(Value::Int(1).div(&Value::Int(0)).is_err());
        assert!(Value::Float(1.0).rem(&Value::Float(0.0)).is_err());
    }

    #[test]
    fn overflow_is_an_error_not_a_wrap() {
        assert!(Value::Int(i64::MAX).add(&Value::Int(1)).is_err());
        assert!(Value::Int(i64::MIN).neg().is_err());
    }

    #[test]
    fn sql_literal_rendering() {
        assert_eq!(Value::Int(3).to_sql_literal(), "3");
        assert_eq!(Value::Float(2.0).to_sql_literal(), "2.0");
        assert_eq!(Value::from("o'clock").to_sql_literal(), "'o''clock'");
        assert_eq!(Value::Null.to_sql_literal(), "NULL");
    }

    #[test]
    fn coercion_respects_varchar_limit() {
        let ok = Value::from("abc").coerce_to(DataType::Varchar(Some(3)));
        assert!(ok.is_ok());
        let too_long = Value::from("abcd").coerce_to(DataType::Varchar(Some(3)));
        assert!(too_long.is_err());
    }

    #[test]
    fn coercion_int_float() {
        assert_eq!(
            Value::Int(3).coerce_to(DataType::Float).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            Value::Float(3.0).coerce_to(DataType::Integer).unwrap(),
            Value::Int(3)
        );
        assert!(Value::Float(3.5).coerce_to(DataType::Integer).is_err());
    }

    #[test]
    fn fixed_widths_are_positive_and_stable() {
        assert_eq!(DataType::Integer.fixed_width(), 8);
        assert_eq!(DataType::Varchar(Some(10)).fixed_width(), 11);
        assert!(DataType::Varchar(None).fixed_width() > 0);
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_truthy());
        assert!(!Value::Bool(false).is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(Value::Int(7).is_truthy());
    }
}
