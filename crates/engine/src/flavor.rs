//! DBMS flavors: where the paper's three systems genuinely differ.
//!
//! The engine's relational semantics are shared; a [`Flavor`] captures the
//! per-DBMS traits the paper had to work around when porting its framework
//! (§4): the shape of logged update records, whether SQL can address a row
//! by a built-in row id, and which log-introspection interface exists.

use std::fmt;

/// Which DBMS personality a [`crate::Database`] emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Flavor {
    /// PostgreSQL-like: full before/after row images in the WAL, a `ctid`
    /// row-address pseudo-column, raw WAL readable only by reverse
    /// engineering (the paper wrote a reader plugin; here: `waldump`).
    Postgres,
    /// Oracle-like: full images, a `rowid` pseudo-column, and a
    /// LogMiner-style SQL view (`v$logmnr_contents`) exposing per-record
    /// redo/undo SQL.
    Oracle,
    /// Sybase ASE-like: UPDATE (`MODIFY`) records carry only the modified
    /// attributes, *no* row-id attribute exists (the proxy must inject an
    /// `IDENTITY` column), and the log is read via `dbcc log` with page
    /// contents via `dbcc page`.
    Sybase,
}

impl Flavor {
    /// All flavors, for portability tests and benchmark sweeps.
    pub const ALL: [Flavor; 3] = [Flavor::Postgres, Flavor::Oracle, Flavor::Sybase];

    /// Human-readable name (as used in the paper's figures).
    pub fn name(self) -> &'static str {
        match self {
            Flavor::Postgres => "PostgreSQL",
            Flavor::Oracle => "Oracle",
            Flavor::Sybase => "Sybase",
        }
    }

    /// The SQL pseudo-column addressing a physical row, if this flavor has
    /// one (`None` forces the identity-column workaround of paper §4.3).
    pub fn rowid_pseudocolumn(self) -> Option<&'static str> {
        match self {
            Flavor::Postgres => Some("ctid"),
            Flavor::Oracle => Some("rowid"),
            Flavor::Sybase => None,
        }
    }

    /// Whether UPDATE log records carry only the changed attributes
    /// (Sybase `MODIFY`) instead of full before/after images.
    pub fn logs_update_deltas(self) -> bool {
        matches!(self, Flavor::Sybase)
    }

    /// Name of the update operation in this flavor's log dump (cosmetic,
    /// but keeps test output recognisable: Sybase calls it `MODIFY`).
    pub fn update_op_name(self) -> &'static str {
        match self {
            Flavor::Sybase => "MODIFY",
            _ => "UPDATE",
        }
    }
}

impl fmt::Display for Flavor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capabilities_match_the_paper() {
        assert_eq!(Flavor::Postgres.rowid_pseudocolumn(), Some("ctid"));
        assert_eq!(Flavor::Oracle.rowid_pseudocolumn(), Some("rowid"));
        assert_eq!(Flavor::Sybase.rowid_pseudocolumn(), None);
        assert!(Flavor::Sybase.logs_update_deltas());
        assert!(!Flavor::Oracle.logs_update_deltas());
        assert_eq!(Flavor::Sybase.update_op_name(), "MODIFY");
    }

    #[test]
    fn all_lists_each_flavor_once() {
        assert_eq!(Flavor::ALL.len(), 3);
        assert!(Flavor::ALL.contains(&Flavor::Postgres));
        assert!(Flavor::ALL.contains(&Flavor::Oracle));
        assert!(Flavor::ALL.contains(&Flavor::Sybase));
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(Flavor::Postgres.to_string(), "PostgreSQL");
    }
}
