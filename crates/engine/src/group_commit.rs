//! Sequenced group-commit WAL writer.
//!
//! Transactions stage their redo records locally while executing (paying
//! byte costs and failpoints per record via [`crate::wal::stage_check`]);
//! at commit they take a short *publication ticket* — the WAL mutex — to
//! append every staged record plus the commit record contiguously, then
//! join a *group force*: the first committer becomes the leader and pays
//! one [`SimContext::charge_log_force`] covering the log tail, while
//! concurrent committers whose commit LSN the in-flight force already
//! covers ride along for free. Under a single thread the protocol
//! degenerates to exactly one force per commit, so virtual-clock runs
//! remain deterministic and byte-identical to the pre-group-commit engine.
//!
//! Lock-contention observability: time spent waiting for the publication
//! ticket is recorded in the `engine.wal.group_commit_wait` histogram, and
//! time a follower spends waiting for the leader's force in
//! `engine.wal.group_force_wait` (DESIGN.md §13).

use std::time::Instant;

use parking_lot::{Condvar, Mutex, MutexGuard};
use resildb_sim::telemetry::names as span_names;
use resildb_sim::SimContext;

use crate::wal::{InternalTxnId, LogOp, Wal};

/// Force-pipeline state shared by all committers.
#[derive(Debug, Default)]
struct ForceState {
    /// Exclusive LSN bound covered by completed forces: every record with
    /// `lsn < forced_upto` is durable.
    forced_upto: u64,
    /// Whether a leader currently has a force in flight.
    forcing: bool,
}

/// The group-commit WAL writer shared by all sessions of a database.
#[derive(Debug, Default)]
pub(crate) struct GroupCommitWal {
    wal: Mutex<Wal>,
    force: Mutex<ForceState>,
    force_done: Condvar,
}

impl GroupCommitWal {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires the publication ticket (the WAL mutex), recording the wait
    /// in the `engine.wal.group_commit_wait` histogram when telemetry is
    /// recording.
    pub fn lock(&self, sim: &SimContext) -> MutexGuard<'_, Wal> {
        let telemetry = sim.telemetry();
        if !telemetry.is_enabled() {
            return self.wal.lock();
        }
        let start = Instant::now();
        let guard = self.wal.lock();
        telemetry.record_span_ns(
            span_names::ENGINE_GROUP_COMMIT_WAIT,
            start.elapsed().as_nanos() as u64,
        );
        guard
    }

    /// Raw access to the underlying log without wait accounting (restore,
    /// snapshot reads).
    pub fn lock_untimed(&self) -> MutexGuard<'_, Wal> {
        self.wal.lock()
    }

    /// Publishes a transaction's staged redo records followed by its
    /// commit record in one ticket hold, returning the commit record's LSN
    /// (the bound the subsequent [`Self::force_covering`] must reach).
    pub fn publish_commit(&self, txn: InternalTxnId, redo: Vec<LogOp>, sim: &SimContext) -> u64 {
        let mut wal = self.lock(sim);
        for op in redo {
            wal.publish(txn, op);
        }
        wal.publish(txn, LogOp::Commit).0
    }

    /// Forces the log far enough to cover `commit_lsn`, amortizing the
    /// force across concurrent committers: the first waiter leads and pays
    /// [`SimContext::charge_log_force`] for the whole log tail; committers
    /// whose record that force covers skip the charge. Followers record
    /// their wait in the `engine.wal.group_force_wait` histogram.
    pub fn force_covering(&self, commit_lsn: u64, sim: &SimContext) {
        let bound = commit_lsn + 1;
        let mut st = self.force.lock();
        if st.forced_upto >= bound {
            return;
        }
        let telemetry = sim.telemetry();
        let wait_start = (st.forcing && telemetry.is_enabled()).then(Instant::now);
        loop {
            if st.forced_upto >= bound {
                if let Some(start) = wait_start {
                    telemetry.record_span_ns(
                        span_names::ENGINE_GROUP_FORCE_WAIT,
                        start.elapsed().as_nanos() as u64,
                    );
                }
                return;
            }
            if st.forcing {
                self.force_done.wait(&mut st);
                continue;
            }
            // Become the leader: force everything published so far, which
            // must include our own record (it was published before we got
            // here), then hand the result to every waiter.
            let target = self.wal.lock().end_lsn();
            st.forcing = true;
            drop(st);
            sim.charge_log_force();
            st = self.force.lock();
            st.forced_upto = st.forced_upto.max(target);
            st.forcing = false;
            self.force_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn publish_n(wal: &GroupCommitWal, txn: u64, n: usize, sim: &SimContext) -> u64 {
        let redo = vec![LogOp::Abort; n.saturating_sub(1)]; // payload shape is irrelevant here
        wal.publish_commit(InternalTxnId(txn), redo, sim)
    }

    #[test]
    fn single_committer_forces_exactly_once() {
        let wal = GroupCommitWal::new();
        let sim = SimContext::free();
        let lsn = publish_n(&wal, 1, 3, &sim);
        wal.force_covering(lsn, &sim);
        assert_eq!(sim.stats().log_forces.get(), 1);
        // A second force over the same bound is already covered.
        wal.force_covering(lsn, &sim);
        assert_eq!(sim.stats().log_forces.get(), 1);
    }

    #[test]
    fn commit_records_are_contiguous_per_txn() {
        let wal = GroupCommitWal::new();
        let sim = SimContext::free();
        publish_n(&wal, 1, 3, &sim);
        publish_n(&wal, 2, 2, &sim);
        let records = wal.lock_untimed().records().to_vec();
        let txns: Vec<u64> = records.iter().map(|r| r.txn.0).collect();
        assert_eq!(txns, vec![1, 1, 1, 2, 2]);
        let lsns: Vec<u64> = records.iter().map(|r| r.lsn.0).collect();
        assert_eq!(lsns, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn concurrent_committers_amortize_forces() {
        let wal = Arc::new(GroupCommitWal::new());
        let sim = SimContext::free();
        let threads = 8;
        let per_thread = 16;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let wal = Arc::clone(&wal);
                let sim = sim.clone();
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        let lsn = publish_n(&wal, (t * per_thread + i + 1) as u64, 2, &sim);
                        wal.force_covering(lsn, &sim);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let commits = (threads * per_thread) as u64;
        let forces = sim.stats().log_forces.get();
        assert!(forces >= 1, "someone must have forced");
        assert!(
            forces <= commits,
            "group commit must never force more than once per commit ({forces} > {commits})"
        );
        // Every commit record must be covered by the final force bound.
        let end = wal.lock_untimed().end_lsn();
        assert_eq!(end, commits * 2);
    }
}

/// Schedule-perturbing stress tests (`--features shuttle_stress`).
///
/// A shuttle-style model checker is not available offline, so this shim
/// approximates schedule exploration the portable way: every iteration
/// runs the full commit protocol under a different deterministic seed,
/// and each worker injects seeded bursts of [`std::thread::yield_now`]
/// between the publication ticket and the force — the window where the
/// leader-election and cover-check logic can go wrong. The invariants
/// checked are the protocol's contract: a returned force covers the
/// caller's commit LSN, per-transaction records stay contiguous, and the
/// force count never exceeds the commit count.
#[cfg(all(test, feature = "shuttle_stress"))]
mod shuttle_stress_tests {
    use super::*;
    use std::sync::Arc;

    /// Deterministic xorshift — seeds replace a model checker's schedule
    /// enumeration, so a failing iteration reproduces by seed.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    fn perturb(rng: &mut Rng) {
        for _ in 0..(rng.next() % 4) {
            std::thread::yield_now();
        }
    }

    #[test]
    fn seeded_interleavings_preserve_group_commit_invariants() {
        const THREADS: u64 = 6;
        const COMMITS_PER_THREAD: u64 = 8;
        const RECORDS_PER_COMMIT: u64 = 3;
        for seed in 1..=32u64 {
            let wal = Arc::new(GroupCommitWal::new());
            let sim = SimContext::free();
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    let wal = Arc::clone(&wal);
                    let sim = sim.clone();
                    scope.spawn(move || {
                        let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9).wrapping_add(t + 1));
                        for i in 0..COMMITS_PER_THREAD {
                            let txn = t * COMMITS_PER_THREAD + i + 1;
                            let redo = vec![LogOp::Abort; (RECORDS_PER_COMMIT - 1) as usize];
                            perturb(&mut rng);
                            let lsn = wal.publish_commit(InternalTxnId(txn), redo, &sim);
                            // The widest race window: between publication
                            // and joining the force group.
                            perturb(&mut rng);
                            wal.force_covering(lsn, &sim);
                            // The contract force_covering returns on: our
                            // commit record is durable.
                            assert!(
                                wal.force.lock().forced_upto > lsn,
                                "seed {seed}: force returned without covering lsn {lsn}"
                            );
                            perturb(&mut rng);
                        }
                    });
                }
            });
            let commits = THREADS * COMMITS_PER_THREAD;
            let wal_guard = wal.lock_untimed();
            assert_eq!(wal_guard.end_lsn(), commits * RECORDS_PER_COMMIT);
            // Per-transaction records stayed contiguous despite the
            // perturbed schedules: each txn's LSNs form an unbroken run.
            let records = wal_guard.records();
            let mut run_txn = None;
            let mut seen = std::collections::HashSet::new();
            for r in records {
                if run_txn != Some(r.txn) {
                    assert!(
                        seen.insert(r.txn),
                        "seed {seed}: txn {:?} records split across the log",
                        r.txn
                    );
                    run_txn = Some(r.txn);
                }
            }
            drop(wal_guard);
            let forces = sim.stats().log_forces.get();
            assert!(forces >= 1, "seed {seed}: someone must have forced");
            assert!(
                forces <= commits,
                "seed {seed}: {forces} forces for {commits} commits"
            );
            assert!(
                wal.force.lock().forced_upto >= commits * RECORDS_PER_COMMIT,
                "seed {seed}: final force bound leaves commit records uncovered"
            );
        }
    }
}
