//! Table catalog.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{EngineError, Result};
use crate::schema::TableSchema;
use crate::table::Table;

/// Shared handle to a table.
pub type TableHandle = Arc<RwLock<Table>>;

/// The set of tables in a database.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<String, TableHandle>,
    next_object_id: u32,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a table from `schema`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::TableExists`] on a name collision.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<TableHandle> {
        let name = schema.name.clone();
        if self.tables.contains_key(&name) {
            return Err(EngineError::TableExists(name));
        }
        self.next_object_id += 1;
        let handle = Arc::new(RwLock::new(Table::new(schema, self.next_object_id)));
        self.tables.insert(name, Arc::clone(&handle));
        Ok(handle)
    }

    /// Removes a table.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownTable`] when absent.
    pub fn drop_table(&mut self, name: &str) -> Result<TableHandle> {
        self.tables
            .remove(&name.to_ascii_lowercase())
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// Puts a handle removed by [`Self::drop_table`] back, undoing a DROP
    /// whose log write failed.
    pub fn restore_table(&mut self, handle: TableHandle) {
        let name = handle.read().schema().name.clone();
        self.tables.insert(name, handle);
    }

    /// Looks a table up by name (case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownTable`] when absent.
    pub fn get(&self, name: &str) -> Result<TableHandle> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// Whether `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_lowercase())
    }

    /// All table names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema(name: &str) -> TableSchema {
        let stmt =
            resildb_sql::parse_statement(&format!("CREATE TABLE {name} (a INTEGER)")).unwrap();
        let resildb_sql::Statement::CreateTable(c) = stmt else {
            unreachable!()
        };
        TableSchema::from_create(&c).unwrap()
    }

    #[test]
    fn create_lookup_drop_cycle() {
        let mut c = Catalog::new();
        c.create_table(schema("t1")).unwrap();
        assert!(c.contains("T1"));
        assert!(c.get("t1").is_ok());
        c.drop_table("t1").unwrap();
        assert!(matches!(c.get("t1"), Err(EngineError::UnknownTable(_))));
    }

    #[test]
    fn duplicate_create_is_error() {
        let mut c = Catalog::new();
        c.create_table(schema("t")).unwrap();
        assert!(matches!(
            c.create_table(schema("t")),
            Err(EngineError::TableExists(_))
        ));
    }

    #[test]
    fn object_ids_are_unique() {
        let mut c = Catalog::new();
        let a = c.create_table(schema("a")).unwrap();
        let b = c.create_table(schema("b")).unwrap();
        assert_ne!(a.read().object_id(), b.read().object_id());
    }

    #[test]
    fn names_are_sorted() {
        let mut c = Catalog::new();
        c.create_table(schema("zeta")).unwrap();
        c.create_table(schema("alpha")).unwrap();
        assert_eq!(c.names(), vec!["alpha".to_string(), "zeta".to_string()]);
    }
}
