//! Incident timelines: phase-stamped marks per intrusion incident and
//! the MTTD/MTTC/MTTR decomposition derived from them.
//!
//! An *incident* is one detect→contain→repair episode. The repair
//! controller (and, for ground truth, the workload driver) push
//! [`IncidentMark`]s as the episode progresses:
//!
//! * `attack_committed` — ground truth, when the driver knows the attack
//!   commit time (VOPR scenarios, the MTTR bench); absent otherwise;
//! * `detected` — when analysis of the incident began;
//! * `fence_raised` / `quarantine_shrunk` / `fence_extended` /
//!   `fence_lifted` — the live-repair containment lifecycle;
//! * `sweep_complete` — the compensation sweep finished.
//!
//! Stamps are strictly monotonic nanoseconds since the timeline's first
//! use, so a mark sequence is totally ordered even when two marks land
//! in the same clock tick. [`IncidentRecord::decomposition`] splits the
//! episode wall time into detection (MTTD), containment (MTTC) and
//! repair (MTTR) phases that sum to it exactly — the decomposition the
//! VOPR timeline oracle checks and `mttr --live` reports.

use std::sync::Mutex;
use std::time::Instant;

use crate::export::json_string;

/// One phase mark on an incident timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentPhase {
    /// Ground-truth attack commit time (known to VOPR and the benches).
    AttackCommitted,
    /// Analysis of the incident began (detection time).
    Detected,
    /// The containment fence went up over the static surface.
    FenceRaised,
    /// The fence shrank to the row-level quarantine.
    QuarantineShrunk,
    /// The compensation sweep finished (last round compensated).
    SweepComplete,
    /// The fence grew to cover closure rows discovered mid-sweep.
    FenceExtended,
    /// The fence came down (success, error or panic teardown).
    FenceLifted,
}

impl IncidentPhase {
    /// Stable wire name, matching the flight-recorder event names.
    pub fn name(&self) -> &'static str {
        match self {
            IncidentPhase::AttackCommitted => "attack_committed",
            IncidentPhase::Detected => "detected",
            IncidentPhase::FenceRaised => "fence_raised",
            IncidentPhase::QuarantineShrunk => "quarantine_shrunk",
            IncidentPhase::SweepComplete => "sweep_complete",
            IncidentPhase::FenceExtended => "fence_extended",
            IncidentPhase::FenceLifted => "fence_lifted",
        }
    }
}

/// A phase mark stamped onto an incident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IncidentMark {
    /// Which phase boundary this mark records.
    pub phase: IncidentPhase,
    /// Strictly monotonic nanoseconds since the timeline's first use.
    pub at_ns: u64,
}

/// The detect→contain→repair wall-time decomposition of one incident.
///
/// The three phases partition the incident's wall time:
/// `mttd_ns + mttc_ns + mttr_ns == wall_ns` always holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IncidentDecomposition {
    /// Attack commit → detection (0 without a ground-truth attack mark).
    pub mttd_ns: u64,
    /// Detection → containment established (fence shrunk to quarantine,
    /// or raised when it never shrinks; 0 for quiesced repairs).
    pub mttc_ns: u64,
    /// Containment → last mark (sweep + fence lift).
    pub mttr_ns: u64,
    /// First mark → last mark.
    pub wall_ns: u64,
}

/// One incident: an id, whether it is still open, and its marks in
/// stamp order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncidentRecord {
    /// 1-based incident id, in open order.
    pub id: u64,
    /// True while the repair episode is still in flight.
    pub open: bool,
    /// Phase marks in strictly increasing stamp order.
    pub marks: Vec<IncidentMark>,
}

impl IncidentRecord {
    /// Stamp of the first mark of `phase`, if present.
    pub fn mark_ns(&self, phase: IncidentPhase) -> Option<u64> {
        self.marks
            .iter()
            .find(|m| m.phase == phase)
            .map(|m| m.at_ns)
    }

    /// Number of marks of `phase`.
    pub fn count(&self, phase: IncidentPhase) -> usize {
        self.marks.iter().filter(|m| m.phase == phase).count()
    }

    /// Derive the MTTD/MTTC/MTTR decomposition from the marks.
    pub fn decomposition(&self) -> IncidentDecomposition {
        let (Some(first), Some(last)) = (self.marks.first(), self.marks.last()) else {
            return IncidentDecomposition::default();
        };
        let detected = self.mark_ns(IncidentPhase::Detected).unwrap_or(first.at_ns);
        let contained = self
            .mark_ns(IncidentPhase::QuarantineShrunk)
            .or_else(|| self.mark_ns(IncidentPhase::FenceRaised))
            .unwrap_or(detected);
        IncidentDecomposition {
            mttd_ns: detected.saturating_sub(first.at_ns),
            mttc_ns: contained.saturating_sub(detected),
            mttr_ns: last.at_ns.saturating_sub(contained),
            wall_ns: last.at_ns.saturating_sub(first.at_ns),
        }
    }
}

#[derive(Debug, Default)]
struct TimelineState {
    epoch: Option<Instant>,
    last_ns: u64,
    pending_attack: Option<u64>,
    incidents: Vec<IncidentRecord>,
}

impl TimelineState {
    fn stamp(&mut self) -> u64 {
        let epoch = *self.epoch.get_or_insert_with(Instant::now);
        let now = epoch.elapsed().as_nanos() as u64;
        // Strictly monotonic: two marks in the same clock tick still get
        // distinct, ordered stamps.
        self.last_ns = now.max(self.last_ns + 1);
        self.last_ns
    }

    fn latest_open(&mut self) -> Option<&mut IncidentRecord> {
        self.incidents.iter_mut().rev().find(|i| i.open)
    }
}

/// Thread-safe registry of incidents, embedded in `Telemetry` next to
/// the flight recorder. Recording is off the statement hot path —
/// marks arrive only a handful of times per repair episode — so one
/// mutex suffices.
#[derive(Debug, Default)]
pub struct IncidentTimeline {
    inner: Mutex<TimelineState>,
}

impl IncidentTimeline {
    /// Create an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the ground-truth attack commit time. The next incident to
    /// open absorbs it as its `attack_committed` mark; the earliest
    /// pending attack wins when several are noted before detection.
    pub fn note_attack(&self) {
        let mut state = self.lock();
        let at = state.stamp();
        state.pending_attack.get_or_insert(at);
    }

    /// Open a new incident, absorbing any pending attack mark. Returns
    /// the 1-based incident id.
    pub fn open_incident(&self) -> u64 {
        let mut state = self.lock();
        let id = state.incidents.len() as u64 + 1;
        let marks = match state.pending_attack.take() {
            Some(at_ns) => vec![IncidentMark {
                phase: IncidentPhase::AttackCommitted,
                at_ns,
            }],
            None => Vec::new(),
        };
        state.incidents.push(IncidentRecord {
            id,
            open: true,
            marks,
        });
        id
    }

    /// Id of the latest still-open incident, if any.
    pub fn current(&self) -> Option<u64> {
        self.lock().latest_open().map(|i| i.id)
    }

    /// Stamp `phase` onto the latest open incident. Returns the stamp,
    /// or `None` when no incident is open (the mark is dropped).
    pub fn mark(&self, phase: IncidentPhase) -> Option<u64> {
        let mut state = self.lock();
        let at_ns = state.stamp();
        let incident = state.latest_open()?;
        incident.marks.push(IncidentMark { phase, at_ns });
        Some(at_ns)
    }

    /// Close the latest open incident (idempotent when none is open).
    pub fn close_incident(&self) {
        if let Some(incident) = self.lock().latest_open() {
            incident.open = false;
        }
    }

    /// Clone out every incident recorded so far.
    pub fn snapshot(&self) -> Vec<IncidentRecord> {
        self.lock().incidents.clone()
    }

    /// Number of incidents recorded so far.
    pub fn len(&self) -> usize {
        self.lock().incidents.len()
    }

    /// True when no incident has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all incidents and any pending attack mark (stamps stay
    /// monotonic across the clear).
    pub fn clear(&self) {
        let mut state = self.lock();
        state.incidents.clear();
        state.pending_attack = None;
    }

    /// Render every incident as the `/incidents` JSON document.
    pub fn to_json(&self) -> String {
        to_json(&self.snapshot())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TimelineState> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Render incidents as a stable JSON document:
/// `{"incidents":[{"id":..,"open":..,"marks":[{"phase":..,"at_ns":..}],
/// "decomposition":{"mttd_ns":..,"mttc_ns":..,"mttr_ns":..,"wall_ns":..}}]}`.
pub fn to_json(incidents: &[IncidentRecord]) -> String {
    let mut out = String::from("{\"incidents\":[");
    for (i, incident) in incidents.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let d = incident.decomposition();
        out.push_str(&format!(
            "{{\"id\":{},\"open\":{},\"marks\":[",
            incident.id, incident.open
        ));
        for (j, mark) in incident.marks.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"phase\":{},\"at_ns\":{}}}",
                json_string(mark.phase.name()),
                mark.at_ns
            ));
        }
        out.push_str(&format!(
            "],\"decomposition\":{{\"mttd_ns\":{},\"mttc_ns\":{},\"mttr_ns\":{},\"wall_ns\":{}}}}}",
            d.mttd_ns, d.mttc_ns, d.mttr_ns, d.wall_ns
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_are_strictly_monotonic() {
        let tl = IncidentTimeline::new();
        tl.open_incident();
        for _ in 0..100 {
            tl.mark(IncidentPhase::FenceExtended);
        }
        let snap = tl.snapshot();
        let marks = &snap[0].marks;
        assert_eq!(marks.len(), 100);
        for pair in marks.windows(2) {
            assert!(pair[0].at_ns < pair[1].at_ns, "{pair:?} not strict");
        }
    }

    #[test]
    fn decomposition_sums_to_wall_time() {
        let tl = IncidentTimeline::new();
        tl.note_attack();
        tl.open_incident();
        tl.mark(IncidentPhase::Detected);
        tl.mark(IncidentPhase::FenceRaised);
        tl.mark(IncidentPhase::QuarantineShrunk);
        tl.mark(IncidentPhase::SweepComplete);
        tl.mark(IncidentPhase::FenceLifted);
        tl.close_incident();
        let incident = &tl.snapshot()[0];
        assert_eq!(incident.marks[0].phase, IncidentPhase::AttackCommitted);
        let d = incident.decomposition();
        assert!(d.mttd_ns > 0, "attack→detect must take time: {d:?}");
        assert_eq!(d.mttd_ns + d.mttc_ns + d.mttr_ns, d.wall_ns);
    }

    #[test]
    fn quiesced_incident_has_zero_containment() {
        let tl = IncidentTimeline::new();
        tl.open_incident();
        tl.mark(IncidentPhase::Detected);
        tl.mark(IncidentPhase::SweepComplete);
        tl.close_incident();
        let d = tl.snapshot()[0].decomposition();
        assert_eq!(d.mttc_ns, 0);
        assert_eq!(d.mttd_ns + d.mttc_ns + d.mttr_ns, d.wall_ns);
    }

    #[test]
    fn pending_attack_feeds_only_next_incident() {
        let tl = IncidentTimeline::new();
        tl.note_attack();
        tl.note_attack(); // earliest wins, later notes ignored
        let a = tl.open_incident();
        tl.close_incident();
        let b = tl.open_incident();
        assert_eq!((a, b), (1, 2));
        let snap = tl.snapshot();
        assert_eq!(snap[0].count(IncidentPhase::AttackCommitted), 1);
        assert_eq!(snap[1].count(IncidentPhase::AttackCommitted), 0);
    }

    #[test]
    fn marks_without_open_incident_are_dropped() {
        let tl = IncidentTimeline::new();
        assert_eq!(tl.mark(IncidentPhase::Detected), None);
        tl.open_incident();
        tl.close_incident();
        assert_eq!(tl.mark(IncidentPhase::Detected), None);
        assert!(tl.snapshot()[0].marks.is_empty());
    }

    #[test]
    fn reopened_incidents_get_fresh_ids_and_current_tracks_open() {
        let tl = IncidentTimeline::new();
        assert_eq!(tl.current(), None);
        let a = tl.open_incident();
        assert_eq!(tl.current(), Some(a));
        tl.close_incident();
        assert_eq!(tl.current(), None);
        let b = tl.open_incident();
        assert_eq!(tl.current(), Some(b));
        assert_ne!(a, b);
    }

    #[test]
    fn json_shape_is_stable() {
        let tl = IncidentTimeline::new();
        tl.open_incident();
        tl.mark(IncidentPhase::Detected);
        tl.close_incident();
        let json = tl.to_json();
        assert!(json.starts_with("{\"incidents\":[{\"id\":1,\"open\":false,"));
        assert!(json.contains("\"phase\":\"detected\""));
        assert!(json.contains("\"decomposition\":{\"mttd_ns\":0,"));
        assert_eq!(tl.to_json(), json, "double export must be identical");
    }
}
