//! Flight-recorder event tracing: a bounded ring buffer of typed
//! lifecycle events forming per-transaction causal timelines.
//!
//! Metrics ([`crate::MetricsRegistry`]) answer *how fast* each layer is;
//! the flight recorder answers *what happened, in what order, caused by
//! whom* — the forensic record an operator replays after an intrusion.
//! Every event is stamped with the proxy transaction id, the proxy
//! session (connection) id and a monotonic tick, so a capture can be
//! joined against the `trans_dep` graph to reconstruct which transaction
//! tainted which.
//!
//! The recorder follows the same disabled-path discipline as
//! [`crate::Telemetry::span`] and the disarmed failpoint check: when
//! disabled (the default), [`FlightRecorder::emit`] returns after one
//! relaxed atomic load — no clock read, no lock, no allocation.
//!
//! Two exporters ship with the recorder: [`to_jsonl`] (one JSON object
//! per line, grep-friendly) and [`to_chrome_trace`] (Chrome Trace Event
//! Format, loadable in Perfetto with transactions as tracks). Both round
//! trip through [`parse_capture`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::export::json_string;

/// Default ring capacity (events) of a [`FlightRecorder`].
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Enforcement verdict attached to a [`EventKind::StmtRewrite`] event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceVerdict {
    /// The classifier was off the statement path (enforcement `Allow`,
    /// the paper's behaviour) or the statement was exempt.
    Unchecked,
    /// Classified fully soundly tracked.
    Sound,
    /// Classified degraded (tracked, but coarser).
    Degraded,
    /// Classified untracked (dependencies invisible), but forwarded.
    Untracked,
    /// Classified untracked and refused by the `Reject` policy.
    Rejected,
}

impl TraceVerdict {
    /// Stable wire name of the verdict.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceVerdict::Unchecked => "unchecked",
            TraceVerdict::Sound => "sound",
            TraceVerdict::Degraded => "degraded",
            TraceVerdict::Untracked => "untracked",
            TraceVerdict::Rejected => "rejected",
        }
    }

    /// Inverse of [`Self::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "unchecked" => TraceVerdict::Unchecked,
            "sound" => TraceVerdict::Sound,
            "degraded" => TraceVerdict::Degraded,
            "untracked" => TraceVerdict::Untracked,
            "rejected" => TraceVerdict::Rejected,
            _ => return None,
        })
    }
}

/// What happened. Statement-lifecycle events are emitted by the tracking
/// proxy (stamped with the proxy transaction id), WAL events by the
/// engine (stamped with the DBMS-internal id — the repair tool's
/// correlation step joins the two), fault events by the simulation
/// substrate, and repair-phase events by the repair pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// The proxy allocated a transaction id (explicit `BEGIN` or the
    /// implicit transaction wrapping a bare write).
    TxnBegin,
    /// The proxy intercepted a statement: rewrite-cache outcome and
    /// enforcement verdict.
    StmtRewrite {
        /// Whether the statement shape was served from the rewrite cache.
        cache_hit: bool,
        /// The enforcement verdict applied to the statement.
        verdict: TraceVerdict,
    },
    /// A SELECT result row carried another transaction's trid stamp: a
    /// new read dependency was folded into the current transaction.
    DepHarvested {
        /// The depended-on proxy transaction id.
        dep: i64,
        /// The mediating table (empty when unknown).
        table: String,
    },
    /// The commit-time `trans_dep` record was written.
    TransDepInsert {
        /// Number of distinct dependencies recorded.
        deps: u32,
    },
    /// The proxy transaction committed (tracking rows durable).
    Commit,
    /// The proxy transaction aborted or was rolled back.
    Abort,
    /// The engine forced a commit record to the WAL.
    WalCommit {
        /// DBMS-internal transaction id.
        internal: u64,
    },
    /// The engine rolled a transaction back (abort record appended).
    WalAbort {
        /// DBMS-internal transaction id.
        internal: u64,
    },
    /// An armed failpoint fired.
    FaultHit {
        /// Failpoint name (see `resildb_sim::failpoints`).
        failpoint: String,
    },
    /// Repair phase: the transaction log was scanned.
    LogScan {
        /// Normalized log records recovered.
        records: u64,
    },
    /// Repair phase: proxy ↔ internal transaction ids were correlated.
    Correlate {
        /// Correlated id pairs.
        pairs: u64,
    },
    /// Repair phase: the damage closure was computed.
    ClosureComputed {
        /// Size of the initial attack set.
        initial: u32,
        /// Size of the resulting undo set.
        nodes: u32,
    },
    /// Repair phase: one undone transaction's compensation finished.
    Compensated {
        /// Compensating statements executed for this transaction.
        statements: u32,
    },
    /// Repair phase: an incident was opened for analysis — the
    /// detection mark on the incident timeline.
    IncidentDetected {
        /// 1-based incident id on the [`crate::IncidentTimeline`].
        incident: u64,
    },
    /// Repair phase: the compensation sweep converged (no fresh closure
    /// members left) — the sweep-complete mark on the incident timeline.
    SweepComplete {
        /// Sweep rounds executed (1 when no mid-sweep growth occurred).
        rounds: u32,
    },
    /// Live repair: the containment fence was raised over the static
    /// blast-radius surface (whole-table quarantine).
    FenceRaised {
        /// Number of wholly-fenced tables.
        tables: u32,
    },
    /// Live repair: correlation caught up and the fence shrank from the
    /// static table surface to the dynamic row-level closure.
    FenceShrunk {
        /// Tables still wholly fenced (no usable primary key).
        tables: u32,
        /// Individually fenced rows.
        rows: u32,
    },
    /// Live repair: re-analysis found new closure members and the fence
    /// grew to cover their rows mid-sweep.
    FenceExtended {
        /// Rows added to the fence.
        rows: u32,
    },
    /// Live repair: the sweep finished and the fence was lifted.
    FenceLifted,
}

impl EventKind {
    /// Stable wire name of the event kind.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::TxnBegin => "txn_begin",
            EventKind::StmtRewrite { .. } => "stmt_rewrite",
            EventKind::DepHarvested { .. } => "dep_harvested",
            EventKind::TransDepInsert { .. } => "trans_dep_insert",
            EventKind::Commit => "commit",
            EventKind::Abort => "abort",
            EventKind::WalCommit { .. } => "wal_commit",
            EventKind::WalAbort { .. } => "wal_abort",
            EventKind::FaultHit { .. } => "fault_hit",
            EventKind::LogScan { .. } => "log_scan",
            EventKind::Correlate { .. } => "correlate",
            EventKind::ClosureComputed { .. } => "closure_computed",
            EventKind::Compensated { .. } => "compensated",
            EventKind::IncidentDetected { .. } => "incident_detected",
            EventKind::SweepComplete { .. } => "sweep_complete",
            EventKind::FenceRaised { .. } => "fence_raised",
            EventKind::FenceShrunk { .. } => "fence_shrunk",
            EventKind::FenceExtended { .. } => "fence_extended",
            EventKind::FenceLifted => "fence_lifted",
        }
    }

    /// Extra JSON fields (`,"k":v...`) carried by this kind; empty for
    /// payload-free kinds.
    fn detail_json(&self) -> String {
        match self {
            EventKind::TxnBegin | EventKind::Commit | EventKind::Abort => String::new(),
            EventKind::StmtRewrite { cache_hit, verdict } => format!(
                ",\"cache_hit\":{cache_hit},\"verdict\":\"{}\"",
                verdict.as_str()
            ),
            EventKind::DepHarvested { dep, table } => {
                format!(",\"dep\":{dep},\"table\":{}", json_string(table))
            }
            EventKind::TransDepInsert { deps } => format!(",\"deps\":{deps}"),
            EventKind::WalCommit { internal } | EventKind::WalAbort { internal } => {
                format!(",\"internal\":{internal}")
            }
            EventKind::FaultHit { failpoint } => {
                format!(",\"failpoint\":{}", json_string(failpoint))
            }
            EventKind::LogScan { records } => format!(",\"records\":{records}"),
            EventKind::Correlate { pairs } => format!(",\"pairs\":{pairs}"),
            EventKind::ClosureComputed { initial, nodes } => {
                format!(",\"initial\":{initial},\"nodes\":{nodes}")
            }
            EventKind::Compensated { statements } => format!(",\"statements\":{statements}"),
            EventKind::IncidentDetected { incident } => format!(",\"incident\":{incident}"),
            EventKind::SweepComplete { rounds } => format!(",\"rounds\":{rounds}"),
            EventKind::FenceRaised { tables } => format!(",\"tables\":{tables}"),
            EventKind::FenceShrunk { tables, rows } => {
                format!(",\"tables\":{tables},\"rows\":{rows}")
            }
            EventKind::FenceExtended { rows } => format!(",\"rows\":{rows}"),
            EventKind::FenceLifted => String::new(),
        }
    }
}

impl std::fmt::Display for EventKind {
    /// Human-readable one-line rendering: the wire name followed by
    /// `key=value` detail fields (for timeline listings).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventKind::TxnBegin | EventKind::Commit | EventKind::Abort => {
                write!(f, "{}", self.name())
            }
            EventKind::StmtRewrite { cache_hit, verdict } => write!(
                f,
                "stmt_rewrite cache_hit={cache_hit} verdict={}",
                verdict.as_str()
            ),
            EventKind::DepHarvested { dep, table } => {
                write!(f, "dep_harvested dep={dep} table={table}")
            }
            EventKind::TransDepInsert { deps } => write!(f, "trans_dep_insert deps={deps}"),
            EventKind::WalCommit { internal } => write!(f, "wal_commit internal={internal}"),
            EventKind::WalAbort { internal } => write!(f, "wal_abort internal={internal}"),
            EventKind::FaultHit { failpoint } => write!(f, "fault_hit failpoint={failpoint}"),
            EventKind::LogScan { records } => write!(f, "log_scan records={records}"),
            EventKind::Correlate { pairs } => write!(f, "correlate pairs={pairs}"),
            EventKind::ClosureComputed { initial, nodes } => {
                write!(f, "closure_computed initial={initial} nodes={nodes}")
            }
            EventKind::Compensated { statements } => {
                write!(f, "compensated statements={statements}")
            }
            EventKind::IncidentDetected { incident } => {
                write!(f, "incident_detected incident={incident}")
            }
            EventKind::SweepComplete { rounds } => write!(f, "sweep_complete rounds={rounds}"),
            EventKind::FenceRaised { tables } => write!(f, "fence_raised tables={tables}"),
            EventKind::FenceShrunk { tables, rows } => {
                write!(f, "fence_shrunk tables={tables} rows={rows}")
            }
            EventKind::FenceExtended { rows } => write!(f, "fence_extended rows={rows}"),
            EventKind::FenceLifted => write!(f, "fence_lifted"),
        }
    }
}

/// One recorded event: a monotonic tick, the transaction and session it
/// belongs to, and [what happened](EventKind).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic tick: allocation order across all threads. Gap-free
    /// while the recorder is enabled (wraparound drops old events from
    /// the ring, never ticks).
    pub seq: u64,
    /// Proxy transaction id (`0` when no transaction is in scope — e.g.
    /// engine WAL events, fault hits, repair-phase events).
    pub txn: i64,
    /// Proxy session (connection) id (`0` outside the proxy).
    pub session: u64,
    /// What happened.
    pub kind: EventKind,
}

/// Point-in-time copy of the recorder's window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// The retained events, oldest first (ascending `seq`).
    pub events: Vec<TraceEvent>,
    /// Total events evicted by wraparound since creation (monotonic).
    pub dropped: u64,
    /// Ring capacity in events.
    pub capacity: usize,
}

impl TraceSnapshot {
    /// Wraps parsed capture events (e.g. from [`parse_capture`]) as a
    /// snapshot: the window is exactly the events given, nothing is
    /// known to have been dropped, and capacity equals the window size.
    pub fn from_events(events: Vec<TraceEvent>) -> Self {
        let capacity = events.len();
        Self {
            events,
            dropped: 0,
            capacity,
        }
    }

    /// The events stamped with proxy transaction `txn`, oldest first.
    pub fn events_for(&self, txn: i64) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.txn == txn).collect()
    }

    /// Occurrences of `kind` name (e.g. `"commit"`) for `txn`.
    pub fn count_for(&self, txn: i64, kind_name: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.txn == txn && e.kind.name() == kind_name)
            .count()
    }
}

#[derive(Debug)]
struct Ring {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    /// Next tick to allocate. Lives under the ring mutex so that tick
    /// allocation and append are one atomic step: the buffer is always
    /// seq-sorted and wraparound always evicts the oldest event.
    seq: u64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A lock-light bounded ring buffer of [`TraceEvent`]s.
///
/// Disabled (the default), [`emit`](Self::emit) costs one relaxed atomic
/// load. Enabled, it allocates a tick and appends under one short mutex
/// hold, so ticks and buffer order always agree; when the ring is full
/// the oldest event is dropped and the `dropped` counter advances —
/// recent history always wins, like an aircraft flight recorder.
#[derive(Debug)]
pub struct FlightRecorder {
    enabled: AtomicBool,
    dropped: AtomicU64,
    ring: Mutex<Ring>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl FlightRecorder {
    /// A disabled recorder retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            enabled: AtomicBool::new(false),
            dropped: AtomicU64::new(0),
            ring: Mutex::new(Ring {
                buf: VecDeque::new(),
                capacity,
                seq: 0,
            }),
        }
    }

    /// Whether events are currently being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Start or stop recording.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Resizes the ring; excess oldest events are dropped (and counted).
    pub fn set_capacity(&self, capacity: usize) {
        let mut ring = lock(&self.ring);
        ring.capacity = capacity;
        while ring.buf.len() > capacity {
            ring.buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one event. No-op (one relaxed load) when disabled.
    pub fn emit(&self, txn: i64, session: u64, kind: EventKind) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut ring = lock(&self.ring);
        let seq = ring.seq;
        ring.seq += 1;
        let event = TraceEvent {
            seq,
            txn,
            session,
            kind,
        };
        if ring.capacity == 0 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if ring.buf.len() >= ring.capacity {
            ring.buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.buf.push_back(event);
    }

    /// Total events evicted by wraparound since creation (monotonic).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events currently retained in the ring.
    pub fn occupancy(&self) -> usize {
        lock(&self.ring).buf.len()
    }

    /// Current ring capacity in events.
    pub fn capacity(&self) -> usize {
        lock(&self.ring).capacity
    }

    /// Fold the recorder's health into a metrics snapshot: the
    /// `telemetry.trace.dropped` eviction counter plus
    /// `telemetry.trace.occupancy`/`telemetry.trace.capacity` gauges —
    /// so silent trace data loss is visible on the metrics plane.
    pub fn fold_metrics(&self, snap: &mut crate::MetricsSnapshot) {
        snap.set_counter("telemetry.trace.dropped", self.dropped());
        let ring = lock(&self.ring);
        snap.set_gauge("telemetry.trace.occupancy", ring.buf.len() as f64);
        snap.set_gauge("telemetry.trace.capacity", ring.capacity as f64);
    }

    /// Copies the current window out.
    pub fn snapshot(&self) -> TraceSnapshot {
        let ring = lock(&self.ring);
        TraceSnapshot {
            events: ring.buf.iter().cloned().collect(),
            dropped: self.dropped.load(Ordering::Relaxed),
            capacity: ring.capacity,
        }
    }

    /// Discards every retained event (counters keep advancing).
    pub fn clear(&self) {
        lock(&self.ring).buf.clear();
    }
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

fn event_jsonl(e: &TraceEvent) -> String {
    format!(
        "{{\"seq\":{},\"txn\":{},\"session\":{},\"event\":\"{}\"{}}}",
        e.seq,
        e.txn,
        e.session,
        e.kind.name(),
        e.kind.detail_json()
    )
}

/// Exports a snapshot as JSONL: one event object per line, ascending
/// `seq`. Grep-friendly and concatenation-safe across captures.
pub fn to_jsonl(snap: &TraceSnapshot) -> String {
    let mut out = String::new();
    for e in &snap.events {
        out.push_str(&event_jsonl(e));
        out.push('\n');
    }
    out
}

/// Exports a snapshot in Chrome Trace Event Format (a `traceEvents`
/// array), loadable in Perfetto / `chrome://tracing`. Transactions map to
/// tracks (`pid` = proxy txn id, `tid` = session id); [`EventKind::TxnBegin`]
/// opens a duration span that [`EventKind::Commit`]/[`EventKind::Abort`]
/// closes, and every other kind renders as an instant event. The
/// monotonic tick doubles as the timestamp, so causality — not
/// wall-clock — orders the view.
pub fn to_chrome_trace(snap: &TraceSnapshot) -> String {
    let mut items: Vec<String> = Vec::with_capacity(snap.events.len());
    for e in &snap.events {
        let (name, ph, scope) = match &e.kind {
            EventKind::TxnBegin => ("txn", "B", ""),
            EventKind::Commit | EventKind::Abort => ("txn", "E", ""),
            other => (other.name(), "i", ",\"s\":\"g\""),
        };
        items.push(format!(
            "{{\"name\":\"{name}\",\"cat\":\"resildb\",\"ph\":\"{ph}\"{scope},\
             \"ts\":{},\"pid\":{},\"tid\":{},\
             \"args\":{{\"event\":\"{}\"{}}}}}",
            e.seq,
            e.txn,
            e.session,
            e.kind.name(),
            e.kind.detail_json()
        ));
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}\n",
        items.join(",")
    )
}

// ---------------------------------------------------------------------------
// Capture parsing (for the `resildb-trace` explorer and round-trip tests)
// ---------------------------------------------------------------------------

/// A minimal parsed JSON value — enough to read back our own captures
/// without a serde dependency.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(n) => Some(*n as i64),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Json::Bool(true)),
            Some(b'f') => self.parse_lit("false", Json::Bool(false)),
            Some(b'n') => self.parse_lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| format!("non-utf8 number: {e}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape: {e}"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run of plain bytes up to the next
                    // quote or backslash in one go. Both delimiters are
                    // ASCII, so they can never split a multi-byte UTF-8
                    // scalar: the run is a valid UTF-8 slice by itself.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| format!("non-utf8 string: {e}"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']' in array, found {other:?}")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                other => return Err(format!("expected ',' or '}}' in object, found {other:?}")),
            }
        }
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = JsonParser::new(text);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

fn kind_from_fields(event: &str, detail: &Json) -> Result<EventKind, String> {
    let u64_field = |k: &str| {
        detail
            .get(k)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {event:?} missing field {k:?}"))
    };
    Ok(match event {
        "txn_begin" => EventKind::TxnBegin,
        "commit" => EventKind::Commit,
        "abort" => EventKind::Abort,
        "stmt_rewrite" => EventKind::StmtRewrite {
            cache_hit: detail
                .get("cache_hit")
                .and_then(Json::as_bool)
                .ok_or("stmt_rewrite missing cache_hit")?,
            verdict: detail
                .get("verdict")
                .and_then(Json::as_str)
                .and_then(TraceVerdict::parse)
                .ok_or("stmt_rewrite missing verdict")?,
        },
        "dep_harvested" => EventKind::DepHarvested {
            dep: detail
                .get("dep")
                .and_then(Json::as_i64)
                .ok_or("dep_harvested missing dep")?,
            table: detail
                .get("table")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
        },
        "trans_dep_insert" => EventKind::TransDepInsert {
            deps: u64_field("deps")? as u32,
        },
        "wal_commit" => EventKind::WalCommit {
            internal: u64_field("internal")?,
        },
        "wal_abort" => EventKind::WalAbort {
            internal: u64_field("internal")?,
        },
        "fault_hit" => EventKind::FaultHit {
            failpoint: detail
                .get("failpoint")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
        },
        "log_scan" => EventKind::LogScan {
            records: u64_field("records")?,
        },
        "correlate" => EventKind::Correlate {
            pairs: u64_field("pairs")?,
        },
        "closure_computed" => EventKind::ClosureComputed {
            initial: u64_field("initial")? as u32,
            nodes: u64_field("nodes")? as u32,
        },
        "compensated" => EventKind::Compensated {
            statements: u64_field("statements")? as u32,
        },
        "incident_detected" => EventKind::IncidentDetected {
            incident: u64_field("incident")?,
        },
        "sweep_complete" => EventKind::SweepComplete {
            rounds: u64_field("rounds")? as u32,
        },
        "fence_raised" => EventKind::FenceRaised {
            tables: u64_field("tables")? as u32,
        },
        "fence_shrunk" => EventKind::FenceShrunk {
            tables: u64_field("tables")? as u32,
            rows: u64_field("rows")? as u32,
        },
        "fence_extended" => EventKind::FenceExtended {
            rows: u64_field("rows")? as u32,
        },
        "fence_lifted" => EventKind::FenceLifted,
        other => return Err(format!("unknown event kind {other:?}")),
    })
}

/// Parses a JSONL capture (the [`to_jsonl`] format) back into events.
///
/// # Errors
///
/// Malformed JSON or unknown event kinds.
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let obj = parse_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let event = obj
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing event field", i + 1))?
            .to_string();
        out.push(TraceEvent {
            seq: obj.get("seq").and_then(Json::as_u64).unwrap_or(0),
            txn: obj.get("txn").and_then(Json::as_i64).unwrap_or(0),
            session: obj.get("session").and_then(Json::as_u64).unwrap_or(0),
            kind: kind_from_fields(&event, &obj).map_err(|e| format!("line {}: {e}", i + 1))?,
        });
    }
    Ok(out)
}

/// Parses a Chrome Trace Event Format capture (the [`to_chrome_trace`]
/// format) back into events. Both the wrapped object form and a bare
/// `traceEvents` array are accepted.
///
/// # Errors
///
/// Malformed JSON or unknown event kinds.
pub fn parse_chrome_trace(text: &str) -> Result<Vec<TraceEvent>, String> {
    let doc = parse_json(text)?;
    let events = match &doc {
        Json::Arr(_) => &doc,
        Json::Obj(_) => doc.get("traceEvents").ok_or("missing traceEvents array")?,
        _ => return Err("expected object or array".into()),
    };
    let Json::Arr(items) = events else {
        return Err("traceEvents is not an array".into());
    };
    let mut out = Vec::new();
    for (i, item) in items.iter().enumerate() {
        let args = item.get("args").cloned().unwrap_or(Json::Obj(Vec::new()));
        let event = args
            .get("event")
            .and_then(Json::as_str)
            .map(str::to_string)
            .or_else(|| item.get("name").and_then(Json::as_str).map(str::to_string))
            .ok_or_else(|| format!("traceEvents[{i}]: missing event name"))?;
        out.push(TraceEvent {
            seq: item.get("ts").and_then(Json::as_u64).unwrap_or(0),
            txn: item.get("pid").and_then(Json::as_i64).unwrap_or(0),
            session: item.get("tid").and_then(Json::as_u64).unwrap_or(0),
            kind: kind_from_fields(&event, &args).map_err(|e| format!("traceEvents[{i}]: {e}"))?,
        });
    }
    Ok(out)
}

/// Parses a capture in either supported format, sniffing the container
/// structurally: the first non-empty line is parsed as standalone JSON.
/// An array, or an object whose *top-level* keys include `traceEvents`,
/// means Chrome trace; any other object means JSONL (so event payloads
/// that merely contain the string `"traceEvents"` are not misrouted);
/// a line that is not standalone JSON means the document spans multiple
/// lines — a pretty-printed Chrome trace.
///
/// # Errors
///
/// Malformed JSON or unknown event kinds.
pub fn parse_capture(text: &str) -> Result<Vec<TraceEvent>, String> {
    let Some(first_line) = text.lines().map(str::trim).find(|l| !l.is_empty()) else {
        return Ok(Vec::new());
    };
    match parse_json(first_line) {
        Ok(Json::Arr(_)) => parse_chrome_trace(text),
        Ok(doc) if doc.get("traceEvents").is_some() => parse_chrome_trace(text),
        Ok(_) => parse_jsonl(text),
        Err(_) => parse_chrome_trace(text),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<EventKind> {
        vec![
            EventKind::TxnBegin,
            EventKind::StmtRewrite {
                cache_hit: true,
                verdict: TraceVerdict::Sound,
            },
            EventKind::DepHarvested {
                dep: 3,
                table: "account".into(),
            },
            EventKind::TransDepInsert { deps: 1 },
            EventKind::Commit,
            EventKind::Abort,
            EventKind::WalCommit { internal: 9 },
            EventKind::WalAbort { internal: 10 },
            EventKind::FaultHit {
                failpoint: "proxy.before_commit".into(),
            },
            EventKind::LogScan { records: 31 },
            EventKind::Correlate { pairs: 7 },
            EventKind::ClosureComputed {
                initial: 1,
                nodes: 4,
            },
            EventKind::Compensated { statements: 3 },
            EventKind::IncidentDetected { incident: 1 },
            EventKind::SweepComplete { rounds: 2 },
            EventKind::FenceRaised { tables: 6 },
            EventKind::FenceShrunk {
                tables: 1,
                rows: 12,
            },
            EventKind::FenceExtended { rows: 2 },
            EventKind::FenceLifted,
        ]
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = FlightRecorder::default();
        r.emit(1, 1, EventKind::TxnBegin);
        let snap = r.snapshot();
        assert!(snap.events.is_empty());
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn wraparound_drops_oldest_and_counts() {
        let r = FlightRecorder::with_capacity(4);
        r.set_enabled(true);
        for i in 0..10 {
            r.emit(i, 0, EventKind::TxnBegin);
        }
        let snap = r.snapshot();
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.dropped, 6);
        assert_eq!(snap.capacity, 4);
        // The window holds the newest events, in seq order.
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        // The dropped counter is monotonic: more wraparound, higher count.
        r.emit(10, 0, EventKind::TxnBegin);
        assert_eq!(r.snapshot().dropped, 7);
    }

    #[test]
    fn shrinking_capacity_trims_oldest() {
        let r = FlightRecorder::with_capacity(8);
        r.set_enabled(true);
        for i in 0..8 {
            r.emit(i, 0, EventKind::TxnBegin);
        }
        r.set_capacity(3);
        let snap = r.snapshot();
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.dropped, 5);
        assert_eq!(snap.events[0].seq, 5);
    }

    #[test]
    fn concurrent_writers_lose_no_in_window_events() {
        use std::sync::Arc;
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 250;
        let r = Arc::new(FlightRecorder::with_capacity(
            (THREADS * PER_THREAD) as usize,
        ));
        r.set_enabled(true);
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        r.emit(t as i64, t, EventKind::TransDepInsert { deps: i as u32 });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = r.snapshot();
        assert_eq!(snap.events.len(), (THREADS * PER_THREAD) as usize);
        assert_eq!(snap.dropped, 0);
        // Ticks are unique and the window is seq-sorted.
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seqs.len());
        assert_eq!(seqs, sorted, "ring must preserve tick order");
        // Every thread's full event sequence is present.
        for t in 0..THREADS {
            assert_eq!(
                snap.events_for(t as i64).len() as u64,
                PER_THREAD,
                "thread {t} lost events"
            );
        }
    }

    #[test]
    fn jsonl_round_trips_every_kind() {
        let r = FlightRecorder::default();
        r.set_enabled(true);
        for (i, kind) in sample_events().into_iter().enumerate() {
            r.emit(i as i64, 42, kind);
        }
        let snap = r.snapshot();
        let jsonl = to_jsonl(&snap);
        let parsed = parse_jsonl(&jsonl).unwrap();
        assert_eq!(parsed, snap.events);
    }

    #[test]
    fn chrome_trace_round_trips_and_has_spans() {
        let r = FlightRecorder::default();
        r.set_enabled(true);
        for kind in sample_events() {
            r.emit(7, 1, kind);
        }
        let snap = r.snapshot();
        let chrome = to_chrome_trace(&snap);
        assert!(chrome.contains("\"traceEvents\":["));
        assert!(chrome.contains("\"ph\":\"B\""));
        assert!(chrome.contains("\"ph\":\"E\""));
        assert!(chrome.contains("\"ph\":\"i\""));
        let parsed = parse_chrome_trace(&chrome).unwrap();
        assert_eq!(parsed, snap.events);
        // parse_capture sniffs the container correctly for both formats.
        assert_eq!(parse_capture(&chrome).unwrap(), snap.events);
        assert_eq!(parse_capture(&to_jsonl(&snap)).unwrap(), snap.events);
    }

    #[test]
    fn capture_sniff_is_structural() {
        // A JSONL payload containing the literal "traceEvents" must not
        // be misrouted to the Chrome-trace parser.
        let r = FlightRecorder::default();
        r.set_enabled(true);
        r.emit(
            1,
            0,
            EventKind::DepHarvested {
                dep: 2,
                table: "audit_\"traceEvents\"_log".into(),
            },
        );
        r.emit(
            1,
            0,
            EventKind::FaultHit {
                failpoint: "traceEvents".into(),
            },
        );
        let snap = r.snapshot();
        assert_eq!(parse_capture(&to_jsonl(&snap)).unwrap(), snap.events);
        // A pretty-printed Chrome trace (document spans multiple lines,
        // first line is not standalone JSON) still sniffs as Chrome.
        let pretty = "{\n  \"traceEvents\": [\n    {\"name\":\"txn\",\"ph\":\"B\",\"ts\":0,\
                      \"pid\":1,\"tid\":0,\"args\":{\"event\":\"txn_begin\"}}\n  ]\n}\n";
        let parsed = parse_capture(pretty).unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].kind, EventKind::TxnBegin);
        // A bare traceEvents array (no wrapper object) sniffs as Chrome.
        let bare = "[{\"name\":\"txn\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":0,\
                     \"args\":{\"event\":\"txn_begin\"}}]";
        assert_eq!(parse_capture(bare).unwrap(), parsed);
        // An empty capture parses to no events.
        assert_eq!(parse_capture("").unwrap(), Vec::new());
    }

    #[test]
    fn string_fields_escape_and_round_trip() {
        let r = FlightRecorder::default();
        r.set_enabled(true);
        r.emit(
            1,
            0,
            EventKind::DepHarvested {
                dep: 2,
                table: "we\"ird\\táble\n".into(),
            },
        );
        let snap = r.snapshot();
        assert_eq!(parse_jsonl(&to_jsonl(&snap)).unwrap(), snap.events);
        assert_eq!(
            parse_chrome_trace(&to_chrome_trace(&snap)).unwrap(),
            snap.events
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_jsonl("{\"event\":\"nonsense\"}").is_err());
        assert!(parse_jsonl("not json").is_err());
        assert!(parse_chrome_trace("{\"traceEvents\":42}").is_err());
    }

    #[test]
    fn fold_metrics_exposes_ring_health() {
        let r = FlightRecorder::with_capacity(2);
        r.set_enabled(true);
        for i in 0..5 {
            r.emit(i, 0, EventKind::TxnBegin);
        }
        assert_eq!(r.dropped(), 3);
        assert_eq!(r.occupancy(), 2);
        assert_eq!(r.capacity(), 2);
        let mut snap = crate::MetricsSnapshot::default();
        r.fold_metrics(&mut snap);
        assert_eq!(snap.counter("telemetry.trace.dropped"), 3);
        assert_eq!(snap.gauge("telemetry.trace.occupancy"), Some(2.0));
        assert_eq!(snap.gauge("telemetry.trace.capacity"), Some(2.0));
    }

    #[test]
    fn snapshot_filters_by_txn() {
        let r = FlightRecorder::default();
        r.set_enabled(true);
        r.emit(1, 0, EventKind::TxnBegin);
        r.emit(2, 0, EventKind::TxnBegin);
        r.emit(1, 0, EventKind::Commit);
        let snap = r.snapshot();
        assert_eq!(snap.events_for(1).len(), 2);
        assert_eq!(snap.count_for(1, "commit"), 1);
        assert_eq!(snap.count_for(2, "commit"), 0);
    }
}
