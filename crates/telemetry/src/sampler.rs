//! Background metrics sampling: a bounded ring of timestamped
//! [`MetricsSnapshot`]s plus delta/rate computation between them.
//!
//! The [`Sampler`] itself is passive — [`Sampler::sample_with`] pulls a
//! snapshot from a caller-supplied closure only while enabled, so the
//! disabled path is one relaxed atomic load and the (expensive)
//! snapshot closure never runs. [`SamplerHandle::spawn`] drives a
//! sampler from a background thread on a fixed interval; dropping the
//! handle stops and joins the thread.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::metrics::MetricsSnapshot;

/// Default number of samples retained in the ring (two minutes at the
/// default one-second interval).
pub const DEFAULT_SAMPLER_CAPACITY: usize = 120;

/// One timestamped sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Nanoseconds since the sampler's first sample.
    pub at_ns: u64,
    /// The snapshot taken at that instant.
    pub snapshot: MetricsSnapshot,
}

/// Rates derived from the two most recent samples.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SampleRates {
    /// Seconds between the two samples.
    pub interval_s: f64,
    /// Engine commits per second (`engine.commit.count` delta).
    pub commits_per_s: f64,
    /// Containment-fence rejections per second (`proxy.fence.rejected`).
    pub fence_rejects_per_s: f64,
    /// Change in `engine.execute` p99 latency, nanoseconds (signed).
    pub p99_drift_ns: i64,
}

#[derive(Debug, Default)]
struct SamplerState {
    epoch: Option<Instant>,
    samples: VecDeque<Sample>,
}

/// A bounded ring of metrics samples with delta/rate queries.
#[derive(Debug)]
pub struct Sampler {
    enabled: AtomicBool,
    capacity: usize,
    inner: Mutex<SamplerState>,
}

impl Default for Sampler {
    fn default() -> Self {
        Sampler::new(DEFAULT_SAMPLER_CAPACITY)
    }
}

impl Sampler {
    /// Create a disabled sampler retaining at most `capacity` samples.
    pub fn new(capacity: usize) -> Self {
        Sampler {
            enabled: AtomicBool::new(false),
            capacity: capacity.max(2),
            inner: Mutex::new(SamplerState::default()),
        }
    }

    /// True while sampling is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn sampling on or off. Existing samples are retained.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Take one sample from `source` if enabled. Disabled, this is one
    /// relaxed atomic load and `source` is never called (the
    /// `sampler_disabled` criterion guard pins that cost). Returns
    /// whether a sample was recorded.
    pub fn sample_with(&self, source: impl FnOnce() -> MetricsSnapshot) -> bool {
        if !self.enabled.load(Ordering::Relaxed) {
            return false;
        }
        let snapshot = source();
        let mut state = self.lock();
        let epoch = *state.epoch.get_or_insert_with(Instant::now);
        let at_ns = epoch.elapsed().as_nanos() as u64;
        if state.samples.len() == self.capacity {
            state.samples.pop_front();
        }
        state.samples.push_back(Sample { at_ns, snapshot });
        true
    }

    /// The most recent sample, if any.
    pub fn latest(&self) -> Option<Sample> {
        self.lock().samples.back().cloned()
    }

    /// Number of samples currently retained.
    pub fn len(&self) -> usize {
        self.lock().samples.len()
    }

    /// True when no sample has been taken.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of retained samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Per-second rate of counter `name` between the two most recent
    /// samples (`None` with fewer than two samples or a zero interval).
    pub fn counter_rate(&self, name: &str) -> Option<f64> {
        let (prev, last, dt) = self.last_pair()?;
        let delta = last
            .snapshot
            .counter(name)
            .saturating_sub(prev.snapshot.counter(name));
        Some(delta as f64 / dt)
    }

    /// Signed change of histogram `name`'s p99 between the two most
    /// recent samples, in nanoseconds.
    pub fn p99_drift_ns(&self, name: &str) -> Option<i64> {
        let (prev, last, _) = self.last_pair()?;
        let a = prev.snapshot.histogram(name).map_or(0, |h| h.p99_ns);
        let b = last.snapshot.histogram(name).map_or(0, |h| h.p99_ns);
        Some(b as i64 - a as i64)
    }

    /// The standard rate bundle (commits/s, fence rejects/s, p99 drift
    /// of `engine.execute`) from the two most recent samples.
    pub fn rates(&self) -> Option<SampleRates> {
        let (prev, last, dt) = self.last_pair()?;
        let rate = |name: &str| {
            last.snapshot
                .counter(name)
                .saturating_sub(prev.snapshot.counter(name)) as f64
                / dt
        };
        let p99 = |s: &Sample| {
            s.snapshot
                .histogram("engine.execute")
                .map_or(0, |h| h.p99_ns)
        };
        Some(SampleRates {
            interval_s: dt,
            commits_per_s: rate("engine.commit.count"),
            fence_rejects_per_s: rate("proxy.fence.rejected"),
            p99_drift_ns: p99(&last) as i64 - p99(&prev) as i64,
        })
    }

    /// Drop every retained sample (the epoch is kept).
    pub fn clear(&self) {
        self.lock().samples.clear();
    }

    fn last_pair(&self) -> Option<(Sample, Sample, f64)> {
        let state = self.lock();
        let n = state.samples.len();
        if n < 2 {
            return None;
        }
        let prev = state.samples[n - 2].clone();
        let last = state.samples[n - 1].clone();
        let dt = (last.at_ns.saturating_sub(prev.at_ns)) as f64 / 1e9;
        if dt <= 0.0 {
            return None;
        }
        Some((prev, last, dt))
    }

    fn lock(&self) -> MutexGuard<'_, SamplerState> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A background thread driving a [`Sampler`] on a fixed interval.
/// Dropping the handle stops sampling and joins the thread.
#[derive(Debug)]
pub struct SamplerHandle {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl SamplerHandle {
    /// Enable `sampler` and start a thread calling `source` every
    /// `interval` (clamped to ≥ 1 ms).
    pub fn spawn(
        sampler: Arc<Sampler>,
        interval: Duration,
        source: impl Fn() -> MetricsSnapshot + Send + 'static,
    ) -> SamplerHandle {
        sampler.set_enabled(true);
        let interval = interval.max(Duration::from_millis(1));
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            let mut next = Instant::now();
            while !stop_flag.load(Ordering::Relaxed) {
                sampler.sample_with(&source);
                next += interval;
                while !stop_flag.load(Ordering::Relaxed) {
                    let now = Instant::now();
                    if now >= next {
                        break;
                    }
                    // Sleep in short slices so drop() stops us promptly.
                    std::thread::sleep((next - now).min(Duration::from_millis(20)));
                }
            }
        });
        SamplerHandle {
            stop,
            thread: Some(thread),
        }
    }

    /// Stop the sampling thread and wait for it to exit.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for SamplerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap_with(commits: u64, p99_sample_ns: u64) -> MetricsSnapshot {
        let reg = crate::MetricsRegistry::new();
        reg.counter("engine.commit.count").add(commits);
        reg.counter("proxy.fence.rejected").add(commits / 2);
        reg.histogram("engine.execute").record(p99_sample_ns);
        reg.snapshot()
    }

    #[test]
    fn disabled_sampler_never_calls_source() {
        let sampler = Sampler::new(8);
        let sampled = sampler.sample_with(|| unreachable!("source ran while disabled"));
        assert!(!sampled);
        assert!(sampler.is_empty());
    }

    #[test]
    fn ring_is_bounded() {
        let sampler = Sampler::new(4);
        sampler.set_enabled(true);
        for i in 0..10 {
            assert!(sampler.sample_with(|| snap_with(i, 100)));
        }
        assert_eq!(sampler.len(), 4);
        let latest = sampler.latest().unwrap();
        assert_eq!(latest.snapshot.counter("engine.commit.count"), 9);
    }

    #[test]
    fn rates_derive_from_last_two_samples() {
        let sampler = Sampler::new(8);
        sampler.set_enabled(true);
        sampler.sample_with(|| snap_with(100, 1_000));
        std::thread::sleep(Duration::from_millis(5));
        sampler.sample_with(|| snap_with(200, 1_000_000));
        let rates = sampler.rates().expect("two samples present");
        assert!(rates.interval_s > 0.0);
        assert!(rates.commits_per_s > 0.0);
        let expected = 100.0 / rates.interval_s;
        assert!((rates.commits_per_s - expected).abs() < 1e-6);
        assert!(rates.p99_drift_ns > 0, "p99 grew: {rates:?}");
        assert_eq!(
            sampler.counter_rate("engine.commit.count"),
            Some(rates.commits_per_s)
        );
    }

    #[test]
    fn rates_need_two_samples() {
        let sampler = Sampler::new(8);
        sampler.set_enabled(true);
        assert_eq!(sampler.rates(), None);
        sampler.sample_with(|| snap_with(1, 10));
        assert_eq!(sampler.rates(), None);
    }

    #[test]
    fn background_thread_samples_and_stops_on_drop() {
        let sampler = Arc::new(Sampler::new(64));
        let handle = SamplerHandle::spawn(Arc::clone(&sampler), Duration::from_millis(2), || {
            snap_with(1, 10)
        });
        let deadline = Instant::now() + Duration::from_secs(5);
        while sampler.len() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(sampler.len() >= 3, "background sampler never ran");
        drop(handle);
        let after = sampler.len();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(sampler.len(), after, "thread kept sampling after drop");
    }
}
