//! Named counters, gauges and fixed-bucket log-scale latency histograms.
//!
//! Everything here is lock-free on the hot path: a metric handle is an
//! [`Arc`] around atomics, so recording a sample is a handful of relaxed
//! atomic ops. The registry itself takes a mutex only on first
//! registration of a name (get-or-create) and when snapshotting.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Number of power-of-two nanosecond buckets. Bucket `i` covers
/// `[2^i, 2^(i+1))` ns (bucket 0 also absorbs 0 ns), so 48 buckets span
/// from 1 ns to ~78 hours — far beyond any span this codebase records.
pub const HISTOGRAM_BUCKETS: usize = 48;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A poisoned metrics mutex only means another thread panicked while
    // registering a metric; the map itself is still consistent.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Add `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increment the counter by one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding the latest observed `f64` value (stored as bits).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Set the gauge to `value`.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket log-scale (power-of-two nanoseconds) latency histogram.
///
/// Recording a sample is three relaxed atomic ops (bucket increment,
/// sum add, max update); quantiles are computed only at snapshot time.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }
}

fn bucket_index(nanos: u64) -> usize {
    if nanos <= 1 {
        return 0;
    }
    let idx = 63 - nanos.leading_zeros() as usize;
    idx.min(HISTOGRAM_BUCKETS - 1)
}

/// Upper bound (inclusive) of bucket `idx`, in nanoseconds — used as the
/// quantile estimate and as the `le` bound in the Prometheus exporter.
pub fn bucket_upper(idx: usize) -> u64 {
    if idx + 1 >= 64 {
        u64::MAX
    } else {
        (1u64 << (idx + 1)) - 1
    }
}

impl Histogram {
    /// Record one sample of `nanos` nanoseconds.
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(nanos, Ordering::Relaxed);
        self.max_ns.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Immutable snapshot with estimated quantiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let sum_ns = self.sum_ns.load(Ordering::Relaxed);
        let max_ns = self.max_ns.load(Ordering::Relaxed);
        let buckets: [u64; HISTOGRAM_BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // 1-based rank of the sample at quantile q.
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    // The true sample lies somewhere inside the bucket;
                    // report its upper bound clamped to the observed max.
                    return bucket_upper(i).min(max_ns);
                }
            }
            max_ns
        };
        HistogramSnapshot {
            count,
            sum_ns,
            max_ns,
            p50_ns: quantile(0.50),
            p95_ns: quantile(0.95),
            p99_ns: quantile(0.99),
            buckets,
        }
    }
}

/// Point-in-time view of a [`Histogram`], with bucket-resolution quantiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples, in nanoseconds.
    pub sum_ns: u64,
    /// Largest sample, in nanoseconds.
    pub max_ns: u64,
    /// Estimated 50th-percentile latency (bucket upper bound), ns.
    pub p50_ns: u64,
    /// Estimated 95th-percentile latency (bucket upper bound), ns.
    pub p95_ns: u64,
    /// Estimated 99th-percentile latency (bucket upper bound), ns.
    pub p99_ns: u64,
    /// Per-bucket sample counts (bucket `i` covers `[2^i, 2^(i+1))` ns);
    /// feeds the cumulative `le` buckets of the Prometheus exporter.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            p50_ns: 0,
            p95_ns: 0,
            p99_ns: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Mean sample in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// A registry of named metrics. Handles are `Arc`s, so callers can cache
/// them and record without touching the registry lock again.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<HashMap<String, Arc<Counter>>>,
    gauges: Mutex<HashMap<String, Arc<Gauge>>>,
    histograms: Mutex<HashMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = lock(&self.counters);
        match map.get(name) {
            Some(c) => Arc::clone(c),
            None => {
                let c = Arc::new(Counter::default());
                map.insert(name.to_string(), Arc::clone(&c));
                c
            }
        }
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = lock(&self.gauges);
        match map.get(name) {
            Some(g) => Arc::clone(g),
            None => {
                let g = Arc::new(Gauge::default());
                map.insert(name.to_string(), Arc::clone(&g));
                g
            }
        }
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = lock(&self.histograms);
        match map.get(name) {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(Histogram::default());
                map.insert(name.to_string(), Arc::clone(&h));
                h
            }
        }
    }

    /// Snapshot every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for (name, c) in lock(&self.counters).iter() {
            snap.counters.insert(name.clone(), c.get());
        }
        for (name, g) in lock(&self.gauges).iter() {
            snap.gauges.insert(name.clone(), g.get());
        }
        for (name, h) in lock(&self.histograms).iter() {
            snap.histograms.insert(name.clone(), h.snapshot());
        }
        snap
    }
}

/// A point-in-time, owned view of a set of metrics, mergeable across
/// layers (engine + proxy + repair) into one report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Set (overwrite) a counter value.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Set (overwrite) a gauge value.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Set (overwrite) a histogram snapshot.
    pub fn set_histogram(&mut self, name: &str, snap: HistogramSnapshot) {
        self.histograms.insert(name.to_string(), snap);
    }

    /// Counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value by name, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram snapshot by name, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Merge `other` into `self`: counters add, gauges and histograms
    /// take `other`'s value on name collision (last writer wins).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            self.histograms.insert(name.clone(), *h);
        }
    }

    /// True when no metric of any kind is present.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn histogram_quantiles_single_sample() {
        let h = Histogram::default();
        h.record(1000);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.max_ns, 1000);
        // Single sample: every quantile is that sample's bucket, clamped
        // to the observed max.
        assert_eq!(s.p50_ns, 1000);
        assert_eq!(s.p95_ns, 1000);
        assert_eq!(s.p99_ns, 1000);
    }

    #[test]
    fn histogram_quantiles_spread() {
        let h = Histogram::default();
        // 90 fast samples (~100ns), 10 slow ones (~1ms).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert!(
            s.p50_ns < 256,
            "p50 {} should be in the fast bucket",
            s.p50_ns
        );
        assert!(
            s.p95_ns >= 524_288,
            "p95 {} should be in the slow bucket",
            s.p95_ns
        );
        assert_eq!(s.max_ns, 1_000_000);
        assert!(s.p99_ns <= s.max_ns);
    }

    #[test]
    fn registry_handles_are_shared() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(2);
        b.incr();
        assert_eq!(reg.counter("x").get(), 3);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("x"), 3);
    }

    #[test]
    fn snapshot_merge_adds_counters() {
        let mut a = MetricsSnapshot::default();
        a.set_counter("c", 2);
        a.set_gauge("g", 1.0);
        let mut b = MetricsSnapshot::default();
        b.set_counter("c", 3);
        b.set_gauge("g", 2.5);
        b.set_histogram(
            "h",
            HistogramSnapshot {
                count: 1,
                ..Default::default()
            },
        );
        a.merge(&b);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.gauge("g"), Some(2.5));
        assert_eq!(a.histogram("h").map(|h| h.count), Some(1));
    }
}
