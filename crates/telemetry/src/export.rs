//! Text and JSON exporters for [`MetricsSnapshot`].
//!
//! Both exporters emit the same names and values in the same (sorted)
//! order, so a text report and a JSON report of one snapshot are
//! line-for-line comparable; a unit test below enforces the parity.

use crate::metrics::{HistogramSnapshot, MetricsSnapshot};

/// Render a snapshot as a stable, line-oriented text report.
///
/// Format (names sorted within each section):
/// ```text
/// counter <name> <value>
/// gauge <name> <value>
/// histogram <name> count=<n> p50_ns=<n> p95_ns=<n> p99_ns=<n> max_ns=<n> sum_ns=<n>
/// ```
pub fn to_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        out.push_str(&format!("counter {name} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        out.push_str(&format!("gauge {name} {}\n", format_f64(*v)));
    }
    for (name, h) in &snap.histograms {
        out.push_str(&format!(
            "histogram {name} count={} p50_ns={} p95_ns={} p99_ns={} max_ns={} sum_ns={}\n",
            h.count, h.p50_ns, h.p95_ns, h.p99_ns, h.max_ns, h.sum_ns
        ));
    }
    out
}

/// Render a snapshot as a JSON object with `counters`, `gauges` and
/// `histograms` maps — the same names and values as [`to_text`].
pub fn to_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{");
    out.push_str("\"counters\":{");
    push_entries(
        &mut out,
        snap.counters.iter().map(|(k, v)| (k, v.to_string())),
    );
    out.push_str("},\"gauges\":{");
    push_entries(
        &mut out,
        snap.gauges.iter().map(|(k, v)| (k, format_f64(*v))),
    );
    out.push_str("},\"histograms\":{");
    push_entries(
        &mut out,
        snap.histograms.iter().map(|(k, h)| (k, histogram_json(h))),
    );
    out.push_str("}}");
    out
}

fn push_entries<'a>(out: &mut String, entries: impl Iterator<Item = (&'a String, String)>) {
    let mut first = true;
    for (name, value) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&json_string(name));
        out.push(':');
        out.push_str(&value);
    }
}

fn histogram_json(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"max_ns\":{},\"sum_ns\":{}}}",
        h.count, h.p50_ns, h.p95_ns, h.p99_ns, h.max_ns, h.sum_ns
    )
}

/// Escape a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an `f64` as a valid JSON number (finite; NaN/inf become 0).
pub fn format_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        snap.set_counter("proxy.rewrite_cache.hits", 42);
        snap.set_counter("engine.commit.count", 7);
        snap.set_gauge("sim.pool.hit_ratio", 0.96875);
        snap.set_histogram(
            "engine.execute",
            HistogramSnapshot {
                count: 10,
                sum_ns: 12_345,
                max_ns: 4_000,
                p50_ns: 1_023,
                p95_ns: 4_000,
                p99_ns: 4_000,
                ..Default::default()
            },
        );
        snap
    }

    #[test]
    fn text_is_sorted_and_stable() {
        let text = to_text(&sample_snapshot());
        let expected = "counter engine.commit.count 7\n\
                        counter proxy.rewrite_cache.hits 42\n\
                        gauge sim.pool.hit_ratio 0.96875\n\
                        histogram engine.execute count=10 p50_ns=1023 p95_ns=4000 p99_ns=4000 max_ns=4000 sum_ns=12345\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn json_parses_shape() {
        let json = to_json(&sample_snapshot());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"counters\":{"));
        assert!(json.contains("\"engine.commit.count\":7"));
        assert!(json.contains("\"sim.pool.hit_ratio\":0.96875"));
        assert!(json.contains("\"p95_ns\":4000"));
    }

    /// Text and JSON exporters must serialize the *same* names and
    /// values in the same order — the acceptance criterion's
    /// "serialized identically" check.
    #[test]
    fn text_and_json_export_identical_data() {
        let snap = sample_snapshot();
        let text = to_text(&snap);
        let json = to_json(&snap);
        // Every counter/gauge line in the text report has a matching
        // key/value pair in the JSON report, and vice versa (counts
        // match, so a bijection).
        let mut text_pairs = Vec::new();
        for line in text.lines() {
            let mut parts = line.split_whitespace();
            let kind = parts.next().unwrap();
            let name = parts.next().unwrap();
            match kind {
                "counter" | "gauge" => {
                    text_pairs.push((name.to_string(), parts.next().unwrap().to_string()));
                }
                "histogram" => {
                    for kv in parts {
                        let (k, v) = kv.split_once('=').unwrap();
                        text_pairs.push((format!("{name}.{k}"), v.to_string()));
                    }
                }
                other => panic!("unexpected line kind {other}"),
            }
        }
        for (name, value) in &text_pairs {
            // histogram fields appear as "name":{..."field":value...}
            let direct = format!("{}:{}", json_string(name), value);
            let nested = name
                .rsplit_once('.')
                .map(|(_, field)| format!("\"{field}\":{value}"));
            assert!(
                json.contains(&direct) || nested.map(|n| json.contains(&n)).unwrap_or(false),
                "text pair {name}={value} missing from JSON: {json}"
            );
        }
        assert_eq!(
            text_pairs.len(),
            2 /* counters */ + 1 /* gauge */ + 6, /* histogram fields */
        );
    }

    /// Exports are deterministic: two snapshots of the same registry
    /// state serialize byte-identically (keys in sorted order, stable
    /// number formatting), so bench artifacts diff cleanly across runs.
    #[test]
    fn repeated_exports_are_byte_identical() {
        let registry = crate::MetricsRegistry::default();
        registry.counter("proxy.rewrite_cache.hits").add(42);
        registry.counter("engine.commit.count").add(7);
        registry.gauge("sim.pool.hit_ratio").set(0.96875);
        for ns in [900, 1_023, 4_000] {
            registry.histogram("engine.execute").record(ns);
        }
        let (a, b) = (registry.snapshot(), registry.snapshot());
        assert_eq!(to_text(&a).into_bytes(), to_text(&b).into_bytes());
        assert_eq!(to_json(&a).into_bytes(), to_json(&b).into_bytes());
        // Keys appear in sorted order, independent of insertion order.
        let text = to_text(&a);
        let engine = text.find("counter engine.commit.count").unwrap();
        let proxy = text.find("counter proxy.rewrite_cache.hits").unwrap();
        assert!(engine < proxy);
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn nonfinite_gauges_serialize_as_zero() {
        assert_eq!(format_f64(f64::NAN), "0");
        assert_eq!(format_f64(f64::INFINITY), "0");
        assert_eq!(format_f64(1.5), "1.5");
    }
}
