//! Minimal hand-rolled HTTP/1.1 pull endpoint (std `TcpListener`, no
//! dependencies) exposing the observability plane:
//!
//! * `GET /metrics`   — Prometheus text format (version 0.0.4);
//! * `GET /health`    — liveness, always `200 ok`;
//! * `GET /ready`     — readiness: `503` while a containment fence is
//!   raised or a repair is executing (the caller injects the predicate);
//! * `GET /incidents` — incident-timeline JSON;
//! * `GET /quit`      — optional remote shutdown for bench/CI drivers
//!   (off unless [`ServerRoutes::allow_quit`] is set).
//!
//! The telemetry crate cannot see proxy or repair types, so every data
//! source is injected as a closure by the embedding layer.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::metrics::MetricsSnapshot;
use crate::prometheus::to_prometheus;

type SnapshotFn = dyn Fn() -> MetricsSnapshot + Send + Sync;
type ReadyFn = dyn Fn() -> bool + Send + Sync;
type IncidentsFn = dyn Fn() -> String + Send + Sync;

/// Injected data sources for the endpoint routes.
pub struct ServerRoutes {
    metrics: Box<SnapshotFn>,
    ready: Box<ReadyFn>,
    incidents: Box<IncidentsFn>,
    allow_quit: bool,
}

impl std::fmt::Debug for ServerRoutes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerRoutes")
            .field("allow_quit", &self.allow_quit)
            .finish_non_exhaustive()
    }
}

impl Default for ServerRoutes {
    fn default() -> Self {
        ServerRoutes {
            metrics: Box::new(MetricsSnapshot::default),
            ready: Box::new(|| true),
            incidents: Box::new(|| "{\"incidents\":[]}".to_string()),
            allow_quit: false,
        }
    }
}

impl ServerRoutes {
    /// Start from always-ready, empty defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Source of the `/metrics` snapshot.
    pub fn metrics(mut self, f: impl Fn() -> MetricsSnapshot + Send + Sync + 'static) -> Self {
        self.metrics = Box::new(f);
        self
    }

    /// Readiness predicate for `/ready` (false ⇒ `503`).
    pub fn ready(mut self, f: impl Fn() -> bool + Send + Sync + 'static) -> Self {
        self.ready = Box::new(f);
        self
    }

    /// Source of the `/incidents` JSON document.
    pub fn incidents(mut self, f: impl Fn() -> String + Send + Sync + 'static) -> Self {
        self.incidents = Box::new(f);
        self
    }

    /// Allow `GET /quit` to stop the server remotely.
    pub fn allow_quit(mut self, allow: bool) -> Self {
        self.allow_quit = allow;
        self
    }
}

/// A running metrics endpoint. Dropping it stops the accept loop and
/// joins the server thread.
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and serve
    /// the routes from a background thread.
    pub fn serve(addr: &str, routes: ServerRoutes) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => handle_connection(stream, &routes, &stop_flag),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        });
        Ok(MetricsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once the accept loop has been asked to stop (e.g. via
    /// `/quit`).
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Stop the accept loop and join the server thread.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }

    /// Block until the accept loop exits (a `/quit` request or
    /// [`MetricsServer::shutdown`] from another handle).
    pub fn join(&mut self) {
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(mut stream: TcpStream, routes: &ServerRoutes, stop: &AtomicBool) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let Some(path) = read_request_path(&mut stream) else {
        return;
    };
    let (status, content_type, body) = match path.as_str() {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            to_prometheus(&(routes.metrics)()),
        ),
        "/health" => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        "/ready" => {
            if (routes.ready)() {
                ("200 OK", "text/plain; charset=utf-8", "ready\n".to_string())
            } else {
                (
                    "503 Service Unavailable",
                    "text/plain; charset=utf-8",
                    "not ready\n".to_string(),
                )
            }
        }
        "/incidents" => (
            "200 OK",
            "application/json; charset=utf-8",
            (routes.incidents)(),
        ),
        "/quit" if routes.allow_quit => {
            stop.store(true, Ordering::Relaxed);
            ("200 OK", "text/plain; charset=utf-8", "bye\n".to_string())
        }
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Read the request head and return the GET path (query string
/// stripped), or `None` for anything we do not serve.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
        if buf.len() > 16 * 1024 {
            return None;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next()?.split_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    if method != "GET" {
        return None;
    }
    let path = target.split('?').next().unwrap_or(target);
    Some(path.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(
                format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes(),
            )
            .expect("write request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let status = response
            .lines()
            .next()
            .and_then(|l| l.strip_prefix("HTTP/1.1 "))
            .unwrap_or_default()
            .to_string();
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_string())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn serves_metrics_health_ready_and_incidents() {
        let reg = MetricsRegistry::new();
        reg.counter("engine.commit.count").add(5);
        let ready = Arc::new(AtomicBool::new(false));
        let ready_flag = Arc::clone(&ready);
        let routes = ServerRoutes::new()
            .metrics(move || reg.snapshot())
            .ready(move || ready_flag.load(Ordering::Relaxed))
            .incidents(|| "{\"incidents\":[{\"id\":1}]}".to_string());
        let server = MetricsServer::serve("127.0.0.1:0", routes).expect("bind");
        let addr = server.addr();

        let (status, body) = get(addr, "/health");
        assert_eq!((status.as_str(), body.as_str()), ("200 OK", "ok\n"));

        let (status, body) = get(addr, "/metrics");
        assert_eq!(status, "200 OK");
        assert!(body.contains("# TYPE resildb_engine_commit_count_total counter"));
        assert!(body.contains("resildb_engine_commit_count_total 5\n"));

        // /ready flips 503 → 200 with the injected predicate (the fence
        // raise/lift path in the integration tests).
        let (status, _) = get(addr, "/ready");
        assert_eq!(status, "503 Service Unavailable");
        ready.store(true, Ordering::Relaxed);
        let (status, body) = get(addr, "/ready");
        assert_eq!((status.as_str(), body.as_str()), ("200 OK", "ready\n"));

        let (status, body) = get(addr, "/incidents");
        assert_eq!(status, "200 OK");
        assert_eq!(body, "{\"incidents\":[{\"id\":1}]}");

        let (status, _) = get(addr, "/nope");
        assert_eq!(status, "404 Not Found");

        // /quit is rejected unless explicitly allowed.
        let (status, _) = get(addr, "/quit");
        assert_eq!(status, "404 Not Found");
        assert!(!server.is_stopped());
    }

    #[test]
    fn quit_stops_the_server_when_allowed() {
        let mut server = MetricsServer::serve("127.0.0.1:0", ServerRoutes::new().allow_quit(true))
            .expect("bind");
        let addr = server.addr();
        let (status, body) = get(addr, "/quit");
        assert_eq!((status.as_str(), body.as_str()), ("200 OK", "bye\n"));
        server.join();
        assert!(server.is_stopped());
    }
}
