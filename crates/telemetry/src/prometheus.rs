//! Prometheus text-format (version 0.0.4) exporter for
//! [`MetricsSnapshot`].
//!
//! Internal dotted metric names (`engine.commit.count`) become legal
//! Prometheus names under a `resildb_` prefix
//! (`resildb_engine_commit_count_total`); histograms export their full
//! power-of-two nanosecond bucket ladder as cumulative `le` buckets
//! plus `_sum`/`_count`. Output iterates sorted maps, so two exports of
//! the same snapshot are byte-identical.

use crate::metrics::{bucket_upper, HistogramSnapshot, MetricsSnapshot};

/// Sanitize a dotted internal name into a legal Prometheus metric name
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`) under the `resildb_` prefix.
pub fn metric_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 8);
    out.push_str("resildb_");
    for c in raw.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn push_header(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {}\n", escape_help(help)));
    out.push_str(&format!("# TYPE {name} {kind}\n"));
}

fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else {
        format!("{v}")
    }
}

fn push_histogram(out: &mut String, raw: &str, h: &HistogramSnapshot) {
    let name = format!("{}_ns", metric_name(raw));
    push_header(
        out,
        &name,
        "histogram",
        &format!("Latency histogram for {raw} (nanoseconds)."),
    );
    // Cumulative buckets up to the highest occupied one; every sample is
    // also covered by +Inf, which always equals _count.
    let highest = h.buckets.iter().rposition(|&n| n > 0).map_or(0, |i| i + 1);
    let mut cumulative = 0u64;
    for (i, &n) in h.buckets.iter().take(highest).enumerate() {
        cumulative += n;
        out.push_str(&format!(
            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
            bucket_upper(i)
        ));
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
    out.push_str(&format!("{name}_sum {}\n", h.sum_ns));
    out.push_str(&format!("{name}_count {}\n", h.count));
}

/// Render a snapshot in the Prometheus text exposition format.
pub fn to_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (raw, v) in &snap.counters {
        let name = format!("{}_total", metric_name(raw));
        push_header(&mut out, &name, "counter", &format!("Counter {raw}."));
        out.push_str(&format!("{name} {v}\n"));
    }
    for (raw, v) in &snap.gauges {
        let name = metric_name(raw);
        push_header(&mut out, &name, "gauge", &format!("Gauge {raw}."));
        out.push_str(&format!("{name} {}\n", format_value(*v)));
    }
    for (raw, h) in &snap.histograms {
        push_histogram(&mut out, raw, h);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn sample_snapshot() -> MetricsSnapshot {
        let reg = MetricsRegistry::new();
        reg.counter("engine.commit.count").add(7);
        reg.counter("proxy.fence.rejected").add(3);
        reg.gauge("repair.live.fence_size").set(12.0);
        for ns in [100, 100, 900, 1_023, 4_000, 1_000_000] {
            reg.histogram("engine.execute").record(ns);
        }
        reg.snapshot()
    }

    fn is_legal_name(name: &str) -> bool {
        let mut chars = name.chars();
        let first_ok = chars
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':');
        first_ok && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    /// Every exported metric name (and the `le` label) must satisfy the
    /// Prometheus grammar.
    #[test]
    fn names_and_labels_are_legal() {
        let text = to_prometheus(&sample_snapshot());
        assert!(!text.is_empty());
        for line in text.lines() {
            let name = if let Some(rest) = line.strip_prefix("# HELP ") {
                rest.split_whitespace().next().unwrap()
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                rest.split_whitespace().next().unwrap()
            } else {
                let metric = line.split_whitespace().next().unwrap();
                if let Some((base, labels)) = metric.split_once('{') {
                    let labels = labels.strip_suffix('}').unwrap();
                    assert!(
                        labels.starts_with("le=\"") && labels.ends_with('"'),
                        "unexpected label set {labels:?}"
                    );
                    base
                } else {
                    metric
                }
            };
            assert!(is_legal_name(name), "illegal metric name {name:?}");
            assert!(name.starts_with("resildb_"), "unprefixed name {name:?}");
        }
    }

    #[test]
    fn help_and_type_precede_every_family() {
        let text = to_prometheus(&sample_snapshot());
        for family in [
            ("resildb_engine_commit_count_total", "counter"),
            ("resildb_proxy_fence_rejected_total", "counter"),
            ("resildb_repair_live_fence_size", "gauge"),
            ("resildb_engine_execute_ns", "histogram"),
        ] {
            let (name, kind) = family;
            assert!(
                text.contains(&format!("# HELP {name} ")),
                "no HELP for {name}"
            );
            assert!(
                text.contains(&format!("# TYPE {name} {kind}\n")),
                "no TYPE {kind} for {name}"
            );
        }
    }

    /// Histogram buckets must be cumulative: non-decreasing in `le`
    /// order, with the `+Inf` bucket equal to `_count`.
    #[test]
    fn histogram_buckets_are_cumulative() {
        let snap = sample_snapshot();
        let text = to_prometheus(&snap);
        let mut les = Vec::new();
        let mut counts = Vec::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("resildb_engine_execute_ns_bucket{le=\"") {
                let (le, rest) = rest.split_once("\"}").unwrap();
                les.push(le.to_string());
                counts.push(rest.trim().parse::<u64>().unwrap());
            }
        }
        assert!(counts.len() >= 2, "expected several buckets: {text}");
        assert_eq!(les.last().map(String::as_str), Some("+Inf"));
        // Finite le bounds strictly increase.
        let finite: Vec<u64> = les[..les.len() - 1]
            .iter()
            .map(|le| le.parse().unwrap())
            .collect();
        assert!(finite.windows(2).all(|w| w[0] < w[1]), "{finite:?}");
        // Cumulative counts never decrease and end at the sample count.
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        let total = snap.histogram("engine.execute").unwrap().count;
        assert_eq!(*counts.last().unwrap(), total);
        assert!(text.contains(&format!("resildb_engine_execute_ns_count {total}\n")));
    }

    #[test]
    fn double_export_is_byte_identical() {
        let snap = sample_snapshot();
        assert_eq!(
            to_prometheus(&snap).into_bytes(),
            to_prometheus(&snap).into_bytes()
        );
    }

    #[test]
    fn dotted_names_are_sanitized() {
        assert_eq!(
            metric_name("engine.commit.count"),
            "resildb_engine_commit_count"
        );
        assert_eq!(metric_name("weird name-1"), "resildb_weird_name_1");
    }

    #[test]
    fn nonfinite_gauges_use_prometheus_spelling() {
        let mut snap = MetricsSnapshot::default();
        snap.set_gauge("g", f64::INFINITY);
        assert!(to_prometheus(&snap).contains("resildb_g +Inf\n"));
    }
}
