//! Lightweight span guards and the [`Telemetry`] handle.
//!
//! [`Telemetry::span`] is the single instrumentation primitive threaded
//! through the statement and repair pipelines. When telemetry is
//! disabled (the default for bare [`crate::MetricsRegistry`]-less
//! simulation contexts) the guard is a no-op constructed after one
//! relaxed atomic load — the same fast-path shape as the disarmed
//! failpoint check in `crates/sim/src/fault.rs`, so the hot statement
//! path pays effectively nothing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Instant;

use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::timeline::IncidentTimeline;
use crate::trace::FlightRecorder;

/// Destination for span durations and counter bumps. The default
/// recorder is the registry itself; tests or embedders can install a
/// custom one (e.g. a printing recorder) via [`Telemetry::set_recorder`].
pub trait Recorder: std::fmt::Debug + Send + Sync {
    /// Record that span `name` took `nanos` wall-clock nanoseconds.
    fn record_span(&self, name: &str, nanos: u64);
    /// Add `delta` to counter `name`.
    fn add_counter(&self, name: &str, delta: u64);
}

impl Recorder for MetricsRegistry {
    fn record_span(&self, name: &str, nanos: u64) {
        self.histogram(name).record(nanos);
    }

    fn add_counter(&self, name: &str, delta: u64) {
        self.counter(name).add(delta);
    }
}

#[derive(Debug, Default)]
struct TelemetryInner {
    enabled: AtomicBool,
    registry: MetricsRegistry,
    sink: RwLock<Option<Arc<dyn Recorder>>>,
    flight: FlightRecorder,
    timeline: IncidentTimeline,
}

/// Shared, cloneable handle to one telemetry domain: an enabled flag, a
/// [`MetricsRegistry`], and an optional custom [`Recorder`] sink.
///
/// Clones share state (`Arc` inside); equality is identity so that
/// config structs carrying a `Telemetry` can stay `PartialEq`/`Eq`.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Arc<TelemetryInner>,
}

impl PartialEq for Telemetry {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Eq for Telemetry {}

impl Telemetry {
    /// A disabled telemetry domain: spans and counters are no-ops until
    /// [`set_enabled`](Telemetry::set_enabled) flips it on.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled telemetry domain recording into its own registry.
    pub fn recording() -> Self {
        let t = Self::default();
        t.set_enabled(true);
        t
    }

    /// Whether spans/counters are currently being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Enable or disable recording.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Install (or clear) a custom recorder sink. When `None` (the
    /// default), samples go to the built-in registry.
    pub fn set_recorder(&self, recorder: Option<Arc<dyn Recorder>>) {
        let mut sink = self
            .inner
            .sink
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        *sink = recorder;
    }

    /// The built-in registry backing this domain.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.inner.registry
    }

    /// The flight recorder riding on this domain. Event recording is
    /// toggled independently of metrics ([`FlightRecorder::set_enabled`]);
    /// it starts disabled even on a [`Telemetry::recording`] domain, so
    /// span-only users never pay for event capture.
    pub fn flight(&self) -> &FlightRecorder {
        &self.inner.flight
    }

    /// The incident timeline riding on this domain. Marks arrive only a
    /// handful of times per repair episode (pushed by the repair
    /// controller), so recording is always on.
    pub fn timeline(&self) -> &IncidentTimeline {
        &self.inner.timeline
    }

    /// Snapshot the built-in registry, plus the flight recorder's ring
    /// health (`telemetry.trace.{dropped,occupancy,capacity}`) so every
    /// exported snapshot reports eviction pressure.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.inner.registry.snapshot();
        self.inner.flight.fold_metrics(&mut snap);
        snap
    }

    /// Start a span named `name`. The returned guard records its
    /// wall-clock duration when dropped. Disabled telemetry returns an
    /// inert guard after a single relaxed atomic load — no clock read.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return Span { active: None };
        }
        Span {
            active: Some(ActiveSpan {
                telemetry: self,
                name,
                started: Instant::now(),
            }),
        }
    }

    /// Like [`Self::span`], but the guard owns a clone of the telemetry
    /// handle instead of borrowing it — for instrumenting methods that
    /// need `&mut self` while the span is live. Disabled telemetry still
    /// pays only the one relaxed load (no clone, no clock read).
    pub fn owned_span(&self, name: &'static str) -> OwnedSpan {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return OwnedSpan { active: None };
        }
        OwnedSpan {
            active: Some(OwnedActiveSpan {
                telemetry: self.clone(),
                name,
                started: Instant::now(),
            }),
        }
    }

    /// Add `delta` to counter `name` (no-op when disabled).
    pub fn count(&self, name: &str, delta: u64) {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.dispatch_counter(name, delta);
    }

    /// Record a span duration directly (for pre-measured intervals).
    pub fn record_span_ns(&self, name: &str, nanos: u64) {
        if !self.inner.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.dispatch_span(name, nanos);
    }

    fn dispatch_span(&self, name: &str, nanos: u64) {
        let sink = self
            .inner
            .sink
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        match sink.as_ref() {
            Some(r) => r.record_span(name, nanos),
            None => self.inner.registry.record_span(name, nanos),
        }
    }

    fn dispatch_counter(&self, name: &str, delta: u64) {
        let sink = self
            .inner
            .sink
            .read()
            .unwrap_or_else(PoisonError::into_inner);
        match sink.as_ref() {
            Some(r) => r.add_counter(name, delta),
            None => self.inner.registry.add_counter(name, delta),
        }
    }
}

struct ActiveSpan<'a> {
    telemetry: &'a Telemetry,
    name: &'static str,
    started: Instant,
}

/// RAII guard measuring one timed region; see [`Telemetry::span`].
pub struct Span<'a> {
    active: Option<ActiveSpan<'a>>,
}

impl Span<'_> {
    /// Whether this span is live (telemetry was enabled at creation).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let nanos = active.started.elapsed().as_nanos();
            let nanos = u64::try_from(nanos).unwrap_or(u64::MAX);
            active.telemetry.dispatch_span(active.name, nanos);
        }
    }
}

struct OwnedActiveSpan {
    telemetry: Telemetry,
    name: &'static str,
    started: Instant,
}

/// Owning variant of [`Span`]; see [`Telemetry::owned_span`].
pub struct OwnedSpan {
    active: Option<OwnedActiveSpan>,
}

impl OwnedSpan {
    /// Whether this span is live (telemetry was enabled at creation).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for OwnedSpan {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            let nanos = active.started.elapsed().as_nanos();
            let nanos = u64::try_from(nanos).unwrap_or(u64::MAX);
            active.telemetry.dispatch_span(active.name, nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_span_records_and_disabled_is_inert() {
        let t = Telemetry::recording();
        drop(t.owned_span("o"));
        assert_eq!(t.snapshot().histogram("o").map(|h| h.count), Some(1));
        let off = Telemetry::disabled();
        assert!(!off.owned_span("o").is_recording());
    }

    #[test]
    fn disabled_span_records_nothing() {
        let t = Telemetry::disabled();
        {
            let s = t.span("x");
            assert!(!s.is_recording());
        }
        t.count("c", 5);
        // Only the flight recorder's ring-health fold appears: no span
        // histograms and no counted counters.
        let snap = t.snapshot();
        assert!(snap.histograms.is_empty());
        assert_eq!(snap.counter("c"), 0);
    }

    #[test]
    fn enabled_span_records_into_registry() {
        let t = Telemetry::recording();
        {
            let s = t.span("stage");
            assert!(s.is_recording());
        }
        t.count("hits", 2);
        let snap = t.snapshot();
        assert_eq!(snap.histogram("stage").map(|h| h.count), Some(1));
        assert_eq!(snap.counter("hits"), 2);
    }

    #[test]
    fn toggling_enabled_flag_is_shared_across_clones() {
        let t = Telemetry::disabled();
        let t2 = t.clone();
        t.set_enabled(true);
        assert!(t2.is_enabled());
        drop(t2.span("s"));
        assert_eq!(t.snapshot().histogram("s").map(|h| h.count), Some(1));
    }

    #[test]
    fn custom_recorder_receives_samples() {
        #[derive(Debug, Default)]
        struct Capture(MetricsRegistry);
        impl Recorder for Capture {
            fn record_span(&self, name: &str, nanos: u64) {
                self.0.histogram(name).record(nanos);
            }
            fn add_counter(&self, name: &str, delta: u64) {
                self.0.counter(name).add(delta);
            }
        }
        let capture = Arc::new(Capture::default());
        let t = Telemetry::recording();
        t.set_recorder(Some(Arc::clone(&capture) as Arc<dyn Recorder>));
        drop(t.span("s"));
        t.count("c", 1);
        // Samples went to the custom sink, not the built-in registry
        // (whose snapshot holds only the flight-recorder ring fold).
        let snap = t.snapshot();
        assert!(snap.histograms.is_empty());
        assert_eq!(snap.counter("c"), 0);
        assert_eq!(capture.0.snapshot().counter("c"), 1);
        assert_eq!(
            capture.0.snapshot().histogram("s").map(|h| h.count),
            Some(1)
        );
    }

    #[test]
    fn equality_is_identity() {
        let a = Telemetry::recording();
        let b = a.clone();
        let c = Telemetry::recording();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
