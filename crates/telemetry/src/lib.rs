//! # resildb-telemetry — dependency-free metrics & tracing
//!
//! One small layer shared by every resildb crate:
//!
//! * [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s and
//!   fixed-bucket log-scale latency [`Histogram`]s (p50/p95/p99/max
//!   snapshots);
//! * [`Telemetry`] + [`Span`] — RAII span guards with a pluggable
//!   [`Recorder`]; when disabled, starting a span costs one relaxed
//!   atomic load (mirroring the disarmed-failpoint fast path in
//!   `crates/sim/src/fault.rs`);
//! * [`export::to_text`] / [`export::to_json`] — stable exporters that
//!   serialize a [`MetricsSnapshot`] identically;
//! * [`FlightRecorder`] — a bounded ring buffer of typed lifecycle
//!   [`TraceEvent`]s (see [`trace`]) forming per-transaction causal
//!   timelines, exportable as JSONL or Chrome Trace Event Format;
//! * the live observability plane (DESIGN.md §17):
//!   [`IncidentTimeline`] phase marks with an MTTD/MTTC/MTTR
//!   decomposition per incident, a background [`Sampler`] ring with
//!   delta/rate queries, the [`prometheus`] text-format exporter, and
//!   the dependency-free [`http`] pull endpoint serving `/metrics`,
//!   `/health`, `/ready` and `/incidents`.
//!
//! The span taxonomy threaded through the statement and repair
//! pipelines lives in [`names`]; see DESIGN.md §11 for the full metric
//! naming scheme.
//!
//! ```
//! use resildb_telemetry::{names, Telemetry};
//!
//! let tel = Telemetry::recording();
//! {
//!     let _span = tel.span(names::ENGINE_EXECUTE);
//!     // ... timed work ...
//! }
//! tel.count(names::ENGINE_COMMIT_COUNT, 1);
//! let snap = tel.snapshot();
//! assert_eq!(snap.histogram(names::ENGINE_EXECUTE).unwrap().count, 1);
//! assert_eq!(snap.counter(names::ENGINE_COMMIT_COUNT), 1);
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

pub mod export;
pub mod http;
mod metrics;
pub mod prometheus;
pub mod sampler;
mod span;
pub mod timeline;
pub mod trace;

pub use http::{MetricsServer, ServerRoutes};
pub use metrics::{
    bucket_upper, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    HISTOGRAM_BUCKETS,
};
pub use prometheus::to_prometheus;
pub use sampler::{Sample, SampleRates, Sampler, SamplerHandle, DEFAULT_SAMPLER_CAPACITY};
pub use span::{OwnedSpan, Recorder, Span, Telemetry};
pub use timeline::{
    IncidentDecomposition, IncidentMark, IncidentPhase, IncidentRecord, IncidentTimeline,
};
pub use trace::{
    EventKind, FlightRecorder, TraceEvent, TraceSnapshot, TraceVerdict, DEFAULT_TRACE_CAPACITY,
};

/// The span and counter taxonomy used across the resildb layers.
///
/// Statement lifecycle (per-statement hot path):
/// proxy rewrite → cache lookup → engine execute → WAL append →
/// commit / trans_dep insert. Repair pipeline (per-phase MTTR
/// decomposition): log scan → correlate → graph build → closure →
/// compensate.
pub mod names {
    /// Cold-path SQL rewrite in the tracking proxy (parse + classify +
    /// shape construction).
    pub const PROXY_REWRITE: &str = "proxy.rewrite";
    /// Rewrite-cache lookup in the tracking proxy.
    pub const PROXY_CACHE_LOOKUP: &str = "proxy.cache_lookup";
    /// Read-set harvest (hidden tracking column strip) in the proxy.
    pub const PROXY_HARVEST: &str = "proxy.harvest";
    /// Dependency-row (`trans_dep`/provenance/annotation) inserts.
    pub const PROXY_TRANS_DEP_INSERT: &str = "proxy.trans_dep_insert";
    /// Engine statement execution (both ad-hoc and prepared).
    pub const ENGINE_EXECUTE: &str = "engine.execute";
    /// WAL record append.
    pub const ENGINE_WAL_APPEND: &str = "engine.wal_append";
    /// Transaction commit (WAL force + lock release).
    pub const ENGINE_COMMIT: &str = "engine.commit";
    /// Count of successful engine commits.
    pub const ENGINE_COMMIT_COUNT: &str = "engine.commit.count";
    /// Repair phase: scanning the transaction log.
    pub const REPAIR_LOG_SCAN: &str = "repair.log_scan";
    /// Repair phase: correlating proxy and engine transaction ids.
    pub const REPAIR_CORRELATE: &str = "repair.correlate";
    /// Repair phase: building the dependency graph.
    pub const REPAIR_GRAPH_BUILD: &str = "repair.graph_build";
    /// Repair phase: computing the damage closure (undo set).
    pub const REPAIR_CLOSURE: &str = "repair.closure";
    /// Repair phase: executing the compensation sweep.
    pub const REPAIR_COMPENSATE: &str = "repair.compensate";
    /// Lock-contention histogram: time a committing transaction waits for
    /// the WAL group-commit ticket (the WAL mutex at publication).
    pub const ENGINE_GROUP_COMMIT_WAIT: &str = "engine.wal.group_commit_wait";
    /// Lock-contention histogram: time a committing transaction waits as a
    /// group-commit follower for the leader's log force to cover its LSN.
    pub const ENGINE_GROUP_FORCE_WAIT: &str = "engine.wal.group_force_wait";
    /// Lock-contention histogram: time spent waiting for a `trans_dep`
    /// dependency-store shard lock in the tracking proxy.
    pub const PROXY_TRANS_DEP_SHARD_WAIT: &str = "proxy.trans_dep.shard_wait";
}
