//! Compile-time thread-safety contract of the public stack.
//!
//! A session is the unit of work handed to an OS thread (`fig4 --threads`
//! spawns one per worker), and the shared handles behind it — the engine
//! database, the drivers, the facade — are what every thread clones. These
//! assertions fail to *compile* if an `Rc`, `RefCell`, or raw pointer ever
//! leaks into those types, which is strictly stronger than any runtime
//! test: the regression is caught before a single test runs.

use resildb_core::{ResilientDb, Session};
use resildb_engine::Database;
use resildb_wire::{Connection, Driver, DualProxyDriver, NativeDriver};

fn assert_send<T: Send>() {}
fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn shared_handles_are_send_and_sync() {
    // Cloned into every worker thread.
    assert_send_sync::<Database>();
    assert_send_sync::<ResilientDb>();
    // Drivers are shared factories: one per benchmark, connect() per thread.
    assert_send_sync::<NativeDriver>();
    assert_send_sync::<DualProxyDriver>();
}

#[test]
fn sessions_are_send() {
    // A session moves to the thread that owns it (Send), but is not shared
    // between threads (no Sync requirement — it holds per-connection
    // transaction state).
    assert_send::<resildb_engine::Session>();
    assert_send::<Box<dyn Connection>>();
    assert_send::<Box<dyn Session>>();
}

#[test]
fn trait_objects_stay_thread_safe() {
    // `dyn Driver` is used behind `Arc` by the bench harness.
    assert_send_sync::<Box<dyn Driver>>();
}
