//! The [`ResilientDb`] facade and its builder.

use std::sync::Arc;

use resildb_engine::{Database, Flavor, Value};
use resildb_proxy::{
    prepare_database, ContainmentPolicy, DepStore, ProxyConfig, ProxyRuntime, RewriteCache,
    TrackerStats, TrackingGranularity, TrackingProxy,
};
use resildb_repair::{
    Analysis, FalseDepRule, RepairController, RepairError, RepairOptions, RepairReport,
};
use resildb_sim::{CostModel, MetricsSnapshot, SimContext, Telemetry};
use resildb_wire::{Connection, Driver, LinkProfile, NativeDriver, WireError};

/// Where the tracking proxy sits (paper Figures 1 and 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProxyPlacement {
    /// Client-side single proxy (Figure 1): every statement — including
    /// the tracker's extra ones — crosses the client↔server link.
    #[default]
    Single,
    /// Client + server proxy pair (Figure 2): the tracker and its extra
    /// statements run on the server side over a local link.
    Dual,
}

/// Builder for [`ResilientDb`].
///
/// # Examples
///
/// ```
/// use resildb_core::{CostModel, Error, Flavor, LinkProfile, ProxyPlacement, ResilientDb};
///
/// # fn main() -> Result<(), Error> {
/// let rdb = ResilientDb::builder(Flavor::Sybase)
///     .cost_model(CostModel::disk_bound_oltp(), 256)
///     .client_link(LinkProfile::lan())
///     .placement(ProxyPlacement::Dual)
///     .build()?;
/// assert_eq!(rdb.database().flavor(), Flavor::Sybase);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ResilientDbBuilder {
    flavor: Flavor,
    cost: CostModel,
    pool_pages: usize,
    link: LinkProfile,
    placement: ProxyPlacement,
    track_reads: bool,
    record_deps_at_commit: bool,
    granularity: TrackingGranularity,
    containment: ContainmentPolicy,
}

impl ResilientDbBuilder {
    fn new(flavor: Flavor) -> Self {
        Self {
            flavor,
            cost: CostModel::free(),
            pool_pages: usize::MAX,
            link: LinkProfile::local(),
            placement: ProxyPlacement::Single,
            track_reads: true,
            record_deps_at_commit: true,
            granularity: TrackingGranularity::Row,
            containment: ContainmentPolicy::default(),
        }
    }

    /// Uses `cost` with a buffer pool of `pool_pages` pages (defaults to a
    /// free cost model — functional use).
    pub fn cost_model(mut self, cost: CostModel, pool_pages: usize) -> Self {
        self.cost = cost;
        self.pool_pages = pool_pages;
        self
    }

    /// Sets the client↔server link profile.
    pub fn client_link(mut self, link: LinkProfile) -> Self {
        self.link = link;
        self
    }

    /// Chooses the proxy deployment architecture.
    pub fn placement(mut self, placement: ProxyPlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Selects row-level (paper) or column-level (§6 extension)
    /// dependency tracking.
    pub fn granularity(mut self, granularity: TrackingGranularity) -> Self {
        self.granularity = granularity;
        self
    }

    /// Disables SELECT read-dependency harvesting (ablation).
    pub fn without_read_tracking(mut self) -> Self {
        self.track_reads = false;
        self
    }

    /// Disables the commit-time `trans_dep` record (ablation).
    pub fn without_commit_records(mut self) -> Self {
        self.record_deps_at_commit = false;
        self
    }

    /// Sets the containment policy live repair fences traffic under
    /// (default [`ContainmentPolicy::Off`]: statements are never fenced
    /// and repair requires a quiesced database).
    pub fn containment(mut self, policy: ContainmentPolicy) -> Self {
        self.containment = policy;
        self
    }

    /// Creates the database, installs the tracking tables and builds the
    /// proxy driver.
    ///
    /// # Errors
    ///
    /// Setup SQL failures.
    pub fn build(self) -> Result<ResilientDb, WireError> {
        // The facade owns the full stack, so it turns telemetry on: one
        // recording domain shared by engine, wire, proxy and repair spans.
        let telemetry = Telemetry::recording();
        // The flight recorder starts disabled even on recording domains;
        // the facade turns it on so every instance gets a forensic event
        // window for free (one relaxed atomic + a ring slot per event).
        telemetry.flight().set_enabled(true);
        let sim = SimContext::with_telemetry(self.cost, self.pool_pages, telemetry.clone());
        let db = Database::new("resildb", self.flavor, sim);
        let native = NativeDriver::new(db.clone(), LinkProfile::local());
        prepare_database(&mut *native.connect()?)?;
        let config = ProxyConfig::builder(self.flavor)
            .track_reads(self.track_reads)
            .record_deps_at_commit(self.record_deps_at_commit)
            .granularity(self.granularity)
            .containment(self.containment)
            .telemetry(telemetry.clone())
            .build();
        let (driver, rewrite_cache, tracker_stats, dep_store, runtime): (
            Box<dyn Driver>,
            _,
            _,
            _,
            _,
        ) = match self.placement {
            ProxyPlacement::Single => {
                let (driver, cache, stats, deps, runtime) =
                    TrackingProxy::single_proxy_instrumented(db.clone(), self.link, config);
                (Box::new(driver), cache, stats, deps, runtime)
            }
            ProxyPlacement::Dual => {
                let (driver, cache, stats, deps, runtime) =
                    TrackingProxy::dual_proxy_instrumented(db.clone(), self.link, config);
                (Box::new(driver), cache, stats, deps, runtime)
            }
        };
        Ok(ResilientDb {
            db,
            driver,
            telemetry,
            rewrite_cache,
            tracker_stats,
            dep_store,
            runtime,
            containment: self.containment,
        })
    }
}

/// An intrusion-resilient database: an emulated DBMS with the tracking
/// proxy in front and the repair tool attached.
pub struct ResilientDb {
    db: Database,
    driver: Box<dyn Driver>,
    telemetry: Telemetry,
    rewrite_cache: Arc<RewriteCache>,
    tracker_stats: Arc<TrackerStats>,
    dep_store: Arc<DepStore>,
    runtime: Arc<ProxyRuntime>,
    containment: ContainmentPolicy,
}

impl std::fmt::Debug for ResilientDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientDb")
            .field("flavor", &self.db.flavor())
            .finish_non_exhaustive()
    }
}

impl ResilientDb {
    /// Starts a builder for `flavor`.
    pub fn builder(flavor: Flavor) -> ResilientDbBuilder {
        ResilientDbBuilder::new(flavor)
    }

    /// A cost-free single-proxy instance of `flavor` — the common case for
    /// functional use and examples.
    ///
    /// # Errors
    ///
    /// Setup SQL failures.
    pub fn new(flavor: Flavor) -> Result<Self, WireError> {
        Self::builder(flavor).build()
    }

    /// Opens a **tracked** connection (through the proxy).
    ///
    /// # Errors
    ///
    /// Driver failures.
    pub fn connect(&self) -> Result<Box<dyn Connection>, WireError> {
        self.driver.connect()
    }

    /// Opens a raw, untracked connection — what an attacker bypassing the
    /// client proxy would get (see the paper's Figure 2 discussion), and
    /// what administrative tooling uses.
    ///
    /// # Errors
    ///
    /// Driver failures.
    pub fn connect_untracked(&self) -> Result<Box<dyn Connection>, WireError> {
        NativeDriver::new(self.db.clone(), LinkProfile::local()).connect()
    }

    /// The underlying database handle.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The telemetry domain every layer of this instance records into.
    /// Recording is on by default; disable it with
    /// [`Telemetry::set_enabled`] to measure the instrumentation-free
    /// fast path.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// One metrics snapshot covering all four layers: proxy (rewrite
    /// cache, enforcement), engine (statement cache, commits, span
    /// histograms), simulation substrate (buffer pool, WAL, link), and
    /// repair (phase histograms). Render it with
    /// [`resildb_sim::telemetry::export::to_text`] or
    /// [`resildb_sim::telemetry::export::to_json`].
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.db.metrics();
        self.rewrite_cache.fold_metrics(&mut snap);
        self.tracker_stats.fold_metrics(&mut snap);
        self.dep_store.fold_metrics(&mut snap);
        self.runtime.fence().fold_metrics(&mut snap);
        snap
    }

    /// The flight recorder every layer of this instance emits trace
    /// events into: transaction lifecycles, statement rewrites, harvested
    /// dependencies, WAL commits, fault hits and repair phases. Enabled
    /// by [`ResilientDbBuilder::build`]; snapshot it and render with
    /// [`resildb_sim::telemetry::trace::to_jsonl`] or
    /// [`resildb_sim::telemetry::trace::to_chrome_trace`], then explore
    /// the capture with `resildb-trace`.
    pub fn flight_recorder(&self) -> &resildb_sim::FlightRecorder {
        self.telemetry.flight()
    }

    /// A quiesced-mode repair controller for this database.
    pub fn repair_controller(&self) -> RepairController {
        RepairController::new(self.db.clone())
    }

    /// A repair controller with explicit [`RepairOptions`] (e.g.
    /// [`Self::live_repair_options`] for online repair).
    pub fn repair_controller_with(&self, options: RepairOptions) -> RepairController {
        RepairController::with_options(self.db.clone(), options)
    }

    /// Live-repair options wired to this instance's proxy runtime and
    /// configured containment policy; refine with the
    /// [`RepairOptions`] builder methods before passing to
    /// [`Self::repair_controller_with`].
    pub fn live_repair_options(&self) -> RepairOptions {
        RepairOptions::live(self.runtime.clone(), self.containment)
    }

    /// The proxy control surface (containment fence, transaction-id
    /// watermark, in-flight drain predicate) live repair drives.
    pub fn proxy_runtime(&self) -> &Arc<ProxyRuntime> {
        &self.runtime
    }

    /// Runs the analysis phase (log scan + dependency graph).
    ///
    /// # Errors
    ///
    /// See [`RepairController::analyze`].
    pub fn analyze(&self) -> Result<Analysis, RepairError> {
        self.repair_controller().analyze()
    }

    /// Full quiesced repair from an initial attack set under `rules`.
    ///
    /// # Errors
    ///
    /// See [`RepairController::repair`].
    pub fn repair(
        &self,
        initial: &[i64],
        rules: &[FalseDepRule],
    ) -> Result<RepairReport, RepairError> {
        RepairController::with_options(
            self.db.clone(),
            RepairOptions::quiesced().rules(rules.iter().cloned()),
        )
        .repair(initial)
    }

    /// Persists the database (data, tracking tables, full log) to `w`;
    /// see [`Database::save_wal`].
    ///
    /// # Errors
    ///
    /// I/O failures.
    pub fn save_wal<W: std::io::Write>(&self, w: W) -> Result<(), resildb_engine::EngineError> {
        self.db.save_wal(w)
    }

    /// Looks up a proxy transaction id by its `ANNOTATE` label.
    ///
    /// # Errors
    ///
    /// Query failures.
    pub fn txn_id_by_label(&self, label: &str) -> Result<Option<i64>, WireError> {
        let mut s = self.db.session();
        let r = s
            .query(&format!(
                "SELECT tr_id FROM annot WHERE descr = '{}'",
                label.replace('\'', "''")
            ))
            .map_err(WireError::Db)?;
        Ok(match r.rows.first().map(|row| row[0].clone()) {
            Some(Value::Int(v)) => Some(v),
            _ => None,
        })
    }
}
