//! The unified `Session` trait — one execution surface over every way of
//! talking to the database.
//!
//! The stack grew three distinct "execute SQL" surfaces: raw engine
//! sessions ([`resildb_engine::Session`]), wire connections
//! ([`resildb_wire::Connection`], including the tracking-proxy
//! connections), and the facade's convenience methods. [`Session`]
//! unifies them: generic code — benchmarks, integration tests, workload
//! drivers — is written once against the trait and runs unchanged over an
//! embedded engine session, an untracked native connection, or a fully
//! tracked proxy connection. Errors surface as the unified
//! [`crate::Error`], and every implementation exposes the same
//! [`MetricsSnapshot`] so telemetry assertions are uniform too.
//!
//! The old inherent methods on each type remain; the trait is additive.

use resildb_sim::MetricsSnapshot;
use resildb_sql::Literal;
use resildb_wire::{Connection, Response, StatementHandle};

use crate::error::Error;

/// One logical database session: execute SQL, prepare statements, read
/// metrics — regardless of which layer of the stack carries it.
///
/// `Send` is a supertrait: a session is the unit of work a benchmark or
/// workload driver hands to an OS thread, so every implementation must be
/// movable across threads (the engine's shared state is `Sync`; the
/// session itself holds only per-connection state).
pub trait Session: Send {
    /// Executes one SQL statement.
    ///
    /// # Errors
    ///
    /// [`Error::Engine`] / [`Error::Wire`] depending on the failing layer;
    /// check [`Error::kind`] for retryable deadlocks.
    fn execute(&mut self, sql: &str) -> Result<Response, Error>;

    /// Prepares `sql` (with `?` placeholders) for repeated execution,
    /// paying the parse cost once.
    ///
    /// Tracking-proxy connections refuse ([`crate::ErrorKind::Protocol`]):
    /// client-side preparation would bypass the proxy's SQL rewriting and
    /// with it the trid stamping the repair capability rests on.
    ///
    /// # Errors
    ///
    /// Parse failures, or refusal where unsupported.
    fn prepare(&mut self, sql: &str) -> Result<StatementHandle, Error>;

    /// Executes a previously prepared statement with `params` bound to its
    /// `?` placeholders in source order.
    ///
    /// # Errors
    ///
    /// Unknown handles, binding arity mismatches, execution failures.
    fn execute_prepared(
        &mut self,
        handle: StatementHandle,
        params: &[Literal],
    ) -> Result<Response, Error>;

    /// A metrics snapshot for the database behind this session, including
    /// any layer-specific counters (a tracked connection folds in the
    /// proxy's rewrite-cache and enforcement stats).
    fn metrics(&self) -> MetricsSnapshot;
}

/// Every wire connection — native, pooled, or tracking-proxy — is a
/// [`Session`]. (`Box<dyn Connection>` is what [`resildb_wire::Driver`]
/// hands out, so this is the impl facade users touch.)
impl Session for Box<dyn Connection> {
    fn execute(&mut self, sql: &str) -> Result<Response, Error> {
        Ok(Connection::execute(self.as_mut(), sql)?)
    }

    fn prepare(&mut self, sql: &str) -> Result<StatementHandle, Error> {
        Ok(Connection::prepare(self.as_mut(), sql)?)
    }

    fn execute_prepared(
        &mut self,
        handle: StatementHandle,
        params: &[Literal],
    ) -> Result<Response, Error> {
        Ok(Connection::execute_prepared(self.as_mut(), handle, params)?)
    }

    fn metrics(&self) -> MetricsSnapshot {
        Connection::metrics(self.as_ref())
    }
}

/// A raw engine session is a [`Session`] too — no wire layer, no link
/// charges, no tracking. Prepared statements live in the session's slot
/// table, addressed through [`StatementHandle::raw`].
impl Session for resildb_engine::Session {
    fn execute(&mut self, sql: &str) -> Result<Response, Error> {
        Ok(Response::from(self.execute_sql(sql)?))
    }

    fn prepare(&mut self, sql: &str) -> Result<StatementHandle, Error> {
        Ok(StatementHandle::from_raw(self.prepare_slot(sql)?))
    }

    fn execute_prepared(
        &mut self,
        handle: StatementHandle,
        params: &[Literal],
    ) -> Result<Response, Error> {
        Ok(Response::from(self.execute_slot(handle.raw(), params)?))
    }

    fn metrics(&self) -> MetricsSnapshot {
        self.database().metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use resildb_engine::{Database, Flavor};

    fn exercise<S: Session>(session: &mut S) {
        session.execute("CREATE TABLE t (a INTEGER)").unwrap();
        let ins = session.prepare("INSERT INTO t (a) VALUES (?)").unwrap();
        session.execute_prepared(ins, &[Literal::Int(7)]).unwrap();
        let resp = session.execute("SELECT a FROM t").unwrap();
        assert_eq!(resp.rows().unwrap().rows.len(), 1);
    }

    #[test]
    fn engine_session_implements_the_trait() {
        let db = Database::in_memory(Flavor::Postgres);
        let mut session = db.session();
        exercise(&mut session);
    }

    #[test]
    fn boxed_connection_implements_the_trait() {
        use resildb_wire::{Driver, LinkProfile, NativeDriver};
        let db = Database::in_memory(Flavor::Postgres);
        let driver = NativeDriver::new(db, LinkProfile::local());
        let mut conn = driver.connect().unwrap();
        exercise(&mut conn);
    }

    #[test]
    fn errors_carry_unified_kinds() {
        let db = Database::in_memory(Flavor::Postgres);
        let mut session = db.session();
        let err = Session::execute(&mut session, "SELECT * FROM missing").unwrap_err();
        assert_eq!(err.kind(), crate::ErrorKind::Statement);
        let err = Session::execute_prepared(&mut session, StatementHandle::from_raw(42), &[])
            .unwrap_err();
        assert_eq!(err.kind(), crate::ErrorKind::Statement);
    }
}
