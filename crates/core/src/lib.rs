//! # resildb — a portable intrusion-resilience framework for DBMSs
//!
//! A Rust reproduction of *“A Portable Implementation Framework for
//! Intrusion-Resilient Database Management Systems”* (Smirnov & Chiueh,
//! DSN 2004). An intrusion-resilient DBMS can quickly repair the damage a
//! malicious or erroneous transaction caused **after** it committed, while
//! preserving the legitimate transactions that ran in between:
//!
//! * at run time, a SQL-rewriting proxy tracks inter-transaction
//!   dependencies without touching DBMS internals
//!   ([`resildb_proxy`]);
//! * at repair time, the transaction log is analyzed, the damage closure
//!   is computed (with DBA-guided false-dependency filtering), and exactly
//!   the corrupted transactions are rolled back with compensating
//!   statements ([`resildb_repair`]).
//!
//! This crate is the facade: [`ResilientDb`] wires an emulated DBMS
//! ([`resildb_engine`], with PostgreSQL/Oracle/Sybase-like [`Flavor`]s),
//! the proxy deployment of your choice and the repair tool together. Every
//! way of executing SQL — raw engine session, untracked native connection,
//! tracked proxy connection — implements the unified [`Session`] trait,
//! fails with the unified [`enum@Error`], and reports into one telemetry
//! domain surfaced by [`ResilientDb::metrics`].
//!
//! # Quickstart
//!
//! ```
//! use resildb_core::{Error, Flavor, ResilientDb};
//!
//! # fn main() -> Result<(), Error> {
//! let rdb = ResilientDb::new(Flavor::Postgres)?;
//! let mut conn = rdb.connect()?;
//! conn.execute("CREATE TABLE account (id INTEGER PRIMARY KEY, balance FLOAT)")?;
//! conn.execute("INSERT INTO account (id, balance) VALUES (1, 100.0), (2, 50.0)")?;
//!
//! // The attack: an already-committed malicious update.
//! conn.execute("ANNOTATE attack")?;
//! conn.execute("BEGIN")?;
//! conn.execute("UPDATE account SET balance = 1000000.0 WHERE id = 1")?;
//! conn.execute("COMMIT")?;
//!
//! // Later activity that never touches the poisoned row survives repair.
//! conn.execute("UPDATE account SET balance = balance + 1.0 WHERE id = 2")?;
//!
//! let attack = rdb.txn_id_by_label("attack")?.expect("attack tracked");
//! let report = rdb.repair(&[attack], &[])?;
//! assert!(report.undo_set.contains(&attack));
//!
//! let mut s = rdb.database().session();
//! let r = s.query("SELECT balance FROM account ORDER BY id")?;
//! assert_eq!(r.rows[0][0], resildb_core::Value::Float(100.0)); // attack undone
//! assert_eq!(r.rows[1][0], resildb_core::Value::Float(51.0));  // survivor kept
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]

mod error;
mod resilient;
mod session;

pub use error::{Error, ErrorKind};
pub use resilient::{ProxyPlacement, ResilientDb, ResilientDbBuilder};
pub use session::Session;

// The framework's building blocks, re-exported for downstream users.
pub use resildb_analyze::{
    infer_derivable_columns, Analyzer, CoverageReport, DerivableColumn, SchemaSnapshot, Verdict,
};
pub use resildb_engine::{
    Database, EngineError, ExecOutcome, Flavor, PreparedStatement, QueryResult,
    Session as EngineSession, StmtCacheStats, Value,
};
pub use resildb_proxy::{
    prepare_database, ContainmentPolicy, EnforcementPolicy, Fence, FenceAction, FenceStats,
    ProxyConfig, ProxyConfigBuilder, ProxyRuntime, TrackerStats, TrackerStatsSnapshot,
    TrackingGranularity, TrackingProxy, TRACKING_TABLES,
};
pub use resildb_repair::{
    detect, Analysis, AnomalyRule, CausalChain, DepGraph, Detection, FalseDepRule, LiveRepairStats,
    RepairController, RepairError, RepairMode, RepairOptions, RepairPhase, RepairPlan,
    RepairProgress, RepairReport, TraceExplorer, WhatIfSession,
};
pub use resildb_sim::{
    failpoints, telemetry, CostModel, EventKind, FaultAction, FaultPlan, FaultTrigger,
    FlightRecorder, HistogramSnapshot, IncidentDecomposition, IncidentMark, IncidentPhase,
    IncidentRecord, IncidentTimeline, InjectedFault, MetricsServer, MetricsSnapshot, Micros,
    SampleRates, Sampler, SamplerHandle, ServerRoutes, SimContext, Telemetry, TraceEvent,
    TraceSnapshot, TraceVerdict,
};
pub use resildb_sql::{parse_statement, Literal, Statement};
pub use resildb_wire::{
    Connection, Driver, LinkProfile, NativeDriver, Response, StatementHandle, WireError,
};
