//! The facade's unified error type.
//!
//! Every layer of the stack has its own error enum — [`EngineError`] for
//! the DBMS, [`WireError`] for the driver/transport, [`RepairError`] for
//! the repair tool, [`resildb_sql::ParseError`] for the standalone parser.
//! Embedders working through [`crate::ResilientDb`] and the unified
//! [`crate::Session`] trait get one [`enum@Error`] instead, with lossless
//! `source()` chains back to the layer errors and a flat [`ErrorKind`]
//! for match-based handling (retry on [`ErrorKind::Deadlock`], reconnect
//! on [`ErrorKind::ConnectionLost`], ...).

use std::fmt;

use resildb_engine::EngineError;
use resildb_repair::RepairError;
use resildb_wire::WireError;

/// Any failure surfaced by the `resildb` facade.
///
/// Marked `#[non_exhaustive]`: future layers (replication, snapshots, ...)
/// may add variants without a semver break, so downstream matches need a
/// wildcard arm — or better, match on [`Error::kind`].
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The DBMS engine rejected or failed a statement.
    Engine(EngineError),
    /// The driver, proxy transport, or connection pool failed.
    Wire(WireError),
    /// The repair tool's analysis or compensation sweep failed.
    Repair(RepairError),
    /// Standalone SQL parsing failed (analyzer / template paths).
    Parse(resildb_sql::ParseError),
    /// An I/O failure (WAL archives, exported reports).
    Io(std::io::Error),
}

/// Flat classification of an [`enum@Error`], stable across layers.
///
/// Also `#[non_exhaustive]` — match with a wildcard arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// SQL text failed to parse (any layer).
    Parse,
    /// The statement was valid but the engine refused or failed it
    /// (unknown table, constraint violation, type error, ...).
    Statement,
    /// The transaction was aborted as a deadlock victim; retrying the
    /// whole transaction may succeed.
    Deadlock,
    /// The connection was lost mid-use and cannot be reused.
    ConnectionLost,
    /// The connection pool is exhausted.
    PoolExhausted,
    /// The wire protocol or transport itself failed.
    Protocol,
    /// Repair-time analysis found inconsistent log or dependency data.
    Analysis,
    /// A test-harness failpoint injected this failure.
    Injected,
    /// An I/O failure.
    Io,
    /// Anything not covered by a more specific kind.
    Other,
}

fn engine_kind(e: &EngineError) -> ErrorKind {
    match e {
        EngineError::Parse(_) => ErrorKind::Parse,
        EngineError::Deadlock => ErrorKind::Deadlock,
        EngineError::Injected(_) => ErrorKind::Injected,
        _ => ErrorKind::Statement,
    }
}

fn wire_kind(e: &WireError) -> ErrorKind {
    match e {
        WireError::Db(inner) => engine_kind(inner),
        WireError::Protocol(_) => ErrorKind::Protocol,
        WireError::PoolExhausted => ErrorKind::PoolExhausted,
        WireError::ConnectionDropped => ErrorKind::ConnectionLost,
    }
}

impl Error {
    /// The flat classification of this error, recursing through wrapper
    /// layers: a deadlock is [`ErrorKind::Deadlock`] whether it surfaced
    /// from the engine directly, through the wire driver, or inside the
    /// repair tool's compensation sweep.
    pub fn kind(&self) -> ErrorKind {
        match self {
            Error::Engine(e) => engine_kind(e),
            Error::Wire(e) => wire_kind(e),
            Error::Repair(RepairError::Engine(e)) => engine_kind(e),
            Error::Repair(RepairError::Wire(e)) => wire_kind(e),
            Error::Repair(RepairError::Analysis(_)) => ErrorKind::Analysis,
            Error::Parse(_) => ErrorKind::Parse,
            Error::Io(_) => ErrorKind::Io,
        }
    }

    /// True when retrying the whole transaction may succeed.
    pub fn is_retryable(&self) -> bool {
        self.kind() == ErrorKind::Deadlock
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Engine(e) => write!(f, "{e}"),
            Error::Wire(e) => write!(f, "{e}"),
            Error::Repair(e) => write!(f, "{e}"),
            Error::Parse(e) => write!(f, "{e}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Engine(e) => Some(e),
            Error::Wire(e) => Some(e),
            Error::Repair(e) => Some(e),
            Error::Parse(e) => Some(e),
            Error::Io(e) => Some(e),
        }
    }
}

impl From<EngineError> for Error {
    fn from(e: EngineError) -> Self {
        Error::Engine(e)
    }
}

impl From<WireError> for Error {
    fn from(e: WireError) -> Self {
        Error::Wire(e)
    }
}

impl From<RepairError> for Error {
    fn from(e: RepairError) -> Self {
        Error::Repair(e)
    }
}

impl From<resildb_sql::ParseError> for Error {
    fn from(e: resildb_sql::ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_recurse_through_layers() {
        assert_eq!(
            Error::from(EngineError::Deadlock).kind(),
            ErrorKind::Deadlock
        );
        assert_eq!(
            Error::from(WireError::Db(EngineError::Deadlock)).kind(),
            ErrorKind::Deadlock
        );
        assert_eq!(
            Error::from(RepairError::Wire(WireError::Db(EngineError::Deadlock))).kind(),
            ErrorKind::Deadlock
        );
        assert_eq!(
            Error::from(RepairError::Analysis("bad".into())).kind(),
            ErrorKind::Analysis
        );
        assert_eq!(
            Error::from(WireError::ConnectionDropped).kind(),
            ErrorKind::ConnectionLost
        );
        assert_eq!(Error::from(WireError::PoolExhausted).kind(), {
            ErrorKind::PoolExhausted
        });
        assert_eq!(
            Error::from(EngineError::Injected("wal.append".into())).kind(),
            ErrorKind::Injected
        );
    }

    #[test]
    fn retryability_matches_wire_layer() {
        assert!(Error::from(EngineError::Deadlock).is_retryable());
        assert!(!Error::from(WireError::PoolExhausted).is_retryable());
    }

    #[test]
    fn source_chain_reaches_the_layer_error() {
        use std::error::Error as _;
        let err = Error::from(WireError::Db(EngineError::Deadlock));
        let src = err.source().expect("wire source");
        assert!(src.downcast_ref::<WireError>().is_some());
        let inner = src.source().expect("engine source");
        assert!(inner.downcast_ref::<EngineError>().is_some());
    }

    #[test]
    fn display_forwards_the_layer_message() {
        let e = Error::from(EngineError::UnknownTable("t".into()));
        assert_eq!(e.to_string(), "unknown table t");
    }
}
