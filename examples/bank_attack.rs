//! The dependency-tracking edge cases of paper §3.1, demonstrated live:
//!
//! * a **false positive** — two transactions touch *different attributes*
//!   of the same row, creating a row-level dependency that column-aware
//!   false-dependency rules can discard;
//! * a **false negative** — the paper's exact example: `T1` raises an
//!   account from $50 to $500, then `T2` charges a service fee to all
//!   accounts with balance < $100. `T2` does *not* read the row `T1`
//!   wrote, so no dependency is recorded — yet undoing `T1` alone leaves
//!   the account without the fee it would have been charged.
//!
//! Run with: `cargo run --example bank_attack`

use resildb_core::{Error, FalseDepRule, Flavor, ResilientDb, Value};

fn main() -> Result<(), Error> {
    let rdb = ResilientDb::new(Flavor::Oracle)?;
    let mut conn = rdb.connect()?;
    conn.execute(
        "CREATE TABLE account (id INTEGER PRIMARY KEY, balance FLOAT, last_login INTEGER)",
    )?;
    conn.execute(
        "INSERT INTO account (id, balance, last_login) VALUES (1, 50.0, 0), (2, 200.0, 0)",
    )?;

    // ---- false positive: disjoint attributes of one row ----------------
    // The "attack" only rewrites last_login (say, to hide its traces).
    conn.execute("ANNOTATE attack_touch_login")?;
    conn.execute("BEGIN")?;
    conn.execute("UPDATE account SET last_login = 999 WHERE id = 2")?;
    conn.execute("COMMIT")?;
    // A legitimate transaction reads the same row's *balance*.
    conn.execute("ANNOTATE reads_balance_only")?;
    conn.execute("BEGIN")?;
    conn.execute("SELECT balance FROM account WHERE id = 2")?;
    conn.execute("UPDATE account SET balance = balance - 1.0 WHERE id = 1")?;
    conn.execute("COMMIT")?;

    let attack = rdb.txn_id_by_label("attack_touch_login")?.unwrap();
    let reader = rdb.txn_id_by_label("reads_balance_only")?.unwrap();
    let analysis = rdb.analyze()?;

    let naive = analysis.undo_set(&[attack], &[]);
    println!(
        "row-level tracking flags the balance reader: {}",
        naive.contains(&reader)
    );

    // The DBA knows the shared row's overlap is only last_login: a
    // column-aware rule discards the false dependency.
    let rules = vec![FalseDepRule::IgnoreDerivedColumns {
        table: "account".into(),
        columns: vec!["last_login".into()],
    }];
    let precise = analysis.undo_set(&[attack], &rules);
    println!(
        "after discarding last_login-only deps:     {}",
        precise.contains(&reader)
    );
    assert!(naive.contains(&reader) && !precise.contains(&reader));

    // ---- false negative: the paper's service-fee example ----------------
    conn.execute("ANNOTATE t1_raise_balance")?;
    conn.execute("BEGIN")?;
    conn.execute("UPDATE account SET balance = 500.0 WHERE id = 1")?;
    conn.execute("COMMIT")?;

    conn.execute("ANNOTATE t2_service_fee")?;
    conn.execute("BEGIN")?;
    // T2's read set does NOT include account 1 (its balance is now 500).
    conn.execute("UPDATE account SET balance = balance - 10.0 WHERE balance < 100.0")?;
    conn.execute("COMMIT")?;

    let t1 = rdb.txn_id_by_label("t1_raise_balance")?.unwrap();
    let t2 = rdb.txn_id_by_label("t2_service_fee")?.unwrap();
    let analysis = rdb.analyze()?;
    let closure = analysis.undo_set(&[t1], &[]);
    println!(
        "\nservice-fee example: dependency analysis says T2 depends on T1: {}",
        closure.contains(&t2)
    );
    assert!(
        !closure.contains(&t2),
        "this is the paper's false NEGATIVE: no read-set overlap exists"
    );
    println!(
        "-> undoing T1 alone restores balance 50 but cannot re-charge the fee \
         T2 would have applied;\n   this is why the paper keeps the DBA in the \
         loop to extend the undo set manually."
    );

    // The DBA, understanding the application, adds T2 to the undo set by
    // hand (the \"what if\" workflow) and repairs.
    let mut undo = closure.clone();
    undo.insert(t2);
    let report = rdb.repair_controller().execute(
        &analysis,
        &resildb_core::RepairPlan::with_undo_set(&[], undo),
    )?;
    println!(
        "manual repair rolled back {} transactions ({} compensating statements)",
        report.undo_set.len(),
        report.outcome.statements.len()
    );

    let mut s = rdb.database().session();
    let r = s.query("SELECT balance FROM account WHERE id = 1")?;
    assert_eq!(r.rows[0][0], Value::Float(49.0)); // 50 - 1 (legit) restored
    println!(
        "account 1 balance after full manual repair: {}",
        r.rows[0][0]
    );
    Ok(())
}
