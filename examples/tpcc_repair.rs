//! End-to-end TPC-C intrusion-and-repair walkthrough, emitting the
//! paper's Figure 3 dependency graph as GraphViz DOT along the way.
//!
//! Run with: `cargo run --example tpcc_repair [--dot]`
//! (`--dot` prints only the DOT graph, ready for `| dot -Tpng`).

use resildb_core::{Error, Flavor, ProxyPlacement, ResilientDb, Value};
use resildb_tpcc::{Attack, AttackKind, Loader, Mix, TpccConfig, TpccRunner, ATTACK_LABEL};

fn main() -> Result<(), Error> {
    let dot_only = std::env::args().any(|a| a == "--dot");

    // A Sybase-flavor database behind the dual-proxy deployment — the
    // most involved configuration: identity-column injection, delta
    // logging, dbcc-based repair, server-side tracking.
    let rdb = ResilientDb::builder(Flavor::Sybase)
        .placement(ProxyPlacement::Dual)
        .build()?;
    let mut conn = rdb.connect()?;

    let config = TpccConfig::tiny();
    Loader::new(config.clone(), 2024).load(&mut *conn)?;
    if !dot_only {
        println!(
            "loaded TPC-C: {} warehouses, {} customers, {} orders",
            config.warehouses,
            config.total_customers(),
            config.total_orders()
        );
    }

    // Normal business, then a forged payment, then more business.
    let mut runner = TpccRunner::new(config, 7);
    Mix::standard(10, 1).run(&mut runner, &mut *conn)?;
    Attack {
        kind: AttackKind::ForgedPayment,
        w_id: 1,
        d_id: 1,
        target_id: 1,
    }
    .execute(&mut *conn)?;
    Mix::standard(15, 2).run(&mut runner, &mut *conn)?;

    // Analysis: dependency graph, damage closure, Figure 3 DOT.
    let attack = rdb.txn_id_by_label(ATTACK_LABEL)?.expect("attack tracked");
    let analysis = rdb.analyze()?;
    let undo = analysis.undo_set(&[attack], &[]);
    let dot = analysis.to_dot(&undo);
    if dot_only {
        print!("{dot}");
        return Ok(());
    }
    println!(
        "\ndependency graph: {} transactions, damage closure = {} transactions",
        analysis.tracked_transactions().len(),
        undo.len()
    );
    println!("--- Figure 3 (GraphViz DOT, damage highlighted) ---\n{dot}");

    // What-if: discard the warehouse.w_ytd false dependencies.
    let rules = vec![resildb_core::FalseDepRule::IgnoreDerivedColumns {
        table: "warehouse".into(),
        columns: vec!["w_ytd".into()],
    }];
    let filtered = analysis.undo_set(&[attack], &rules);
    println!(
        "what-if with w_ytd discarded: {} -> {} transactions to roll back",
        undo.len(),
        filtered.len()
    );

    // Repair with the filtered set and verify the forged money is gone.
    let before = w_ytd(&rdb)?;
    let report = rdb.repair_controller().execute(
        &analysis,
        &resildb_core::RepairPlan::with_undo_set(&[], filtered.clone()),
    )?;
    let after = w_ytd(&rdb)?;
    println!(
        "repair executed {} compensating statements; w_ytd {before:.2} -> {after:.2}",
        report.outcome.statements.len()
    );
    assert!(after < before, "the forged million must be gone");
    println!(
        "saved {}/{} tracked transactions ({:.0}%)",
        report.saved,
        report.tracked_total,
        report.saved_percentage()
    );
    Ok(())
}

fn w_ytd(rdb: &ResilientDb) -> Result<f64, Error> {
    let mut s = rdb.database().session();
    let r = s.query("SELECT w_ytd FROM warehouse WHERE w_id = 1")?;
    match r.rows[0][0] {
        Value::Float(v) => Ok(v),
        ref other => {
            Err(resildb_core::EngineError::Internal(format!("unexpected {other:?}")).into())
        }
    }
}
