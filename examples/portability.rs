//! The paper's portability demonstration: the identical scenario repaired
//! on all three DBMS flavors, printing what each flavor's log pipeline
//! actually looks like on the way (LogMiner redo/undo SQL for Oracle, raw
//! WAL records for PostgreSQL, `dbcc log` records for Sybase).
//!
//! Run with: `cargo run --example portability`

use resildb_core::{Error, Flavor, ResilientDb, Value};
use resildb_engine::introspect;

fn main() -> Result<(), Error> {
    for flavor in Flavor::ALL {
        println!("==================== {flavor} ====================");
        let rdb = ResilientDb::new(flavor)?;
        let mut conn = rdb.connect()?;
        conn.execute("CREATE TABLE acct (id INTEGER PRIMARY KEY, bal FLOAT)")?;
        conn.execute("INSERT INTO acct (id, bal) VALUES (1, 100.0), (2, 50.0)")?;
        conn.execute("ANNOTATE attack")?;
        conn.execute("BEGIN")?;
        conn.execute("UPDATE acct SET bal = 1000000.0 WHERE id = 1")?;
        conn.execute("COMMIT")?;
        conn.execute("ANNOTATE dependent")?;
        conn.execute("BEGIN")?;
        conn.execute("SELECT bal FROM acct WHERE id = 1")?;
        conn.execute("UPDATE acct SET bal = bal + 7.0 WHERE id = 2")?;
        conn.execute("COMMIT")?;

        // Show this flavor's native log interface, as the repair adapter
        // sees it.
        match flavor {
            Flavor::Oracle => {
                println!("v$logmnr_contents (UPDATE rows):");
                for row in introspect::logminer(rdb.database())? {
                    if row.operation == "UPDATE" {
                        println!("  redo: {}", row.sql_redo.as_deref().unwrap_or("-"));
                        println!("  undo: {}", row.sql_undo.as_deref().unwrap_or("-"));
                    }
                }
            }
            Flavor::Postgres => {
                println!("WAL records (UPDATEs, full images):");
                for rec in introspect::waldump(rdb.database())? {
                    if rec.op_name == "UPDATE" {
                        println!(
                            "  {} row {:?} page {:?}: {:?} -> {:?}",
                            rec.table.as_deref().unwrap_or("-"),
                            rec.rowid,
                            rec.loc.map(|l| (l.page, l.offset)),
                            rec.before.as_ref().map(|r| r.values().len()),
                            rec.after.as_ref().map(|r| r.values().len()),
                        );
                    }
                }
            }
            Flavor::Sybase => {
                println!("dbcc log (MODIFY records carry only changed attributes):");
                for rec in introspect::dbcc_log(rdb.database())? {
                    if rec.op == introspect::DbccOp::Modify {
                        println!(
                            "  {} page {} offset {} len {}: {} delta bytes",
                            rec.table,
                            rec.page,
                            rec.offset,
                            rec.len,
                            rec.bytes.len()
                        );
                    }
                }
            }
        }

        // The repair itself is flavor-independent from the caller's view.
        let attack = rdb.txn_id_by_label("attack")?.expect("tracked");
        let report = rdb.repair(&[attack], &[])?;
        let mut s = rdb.database().session();
        let rows = s.query("SELECT id, bal FROM acct ORDER BY id")?.rows;
        println!(
            "repair rolled back {} txns; final state: acct1={} acct2={}",
            report.undo_set.len(),
            rows[0][1],
            rows[1][1]
        );
        assert_eq!(rows[0][1], Value::Float(100.0));
        assert_eq!(rows[1][1], Value::Float(50.0));
        println!();
    }
    println!("identical outcome on all three flavors — the framework is portable.");
    Ok(())
}
