//! Host crate for the runnable examples in this directory.
