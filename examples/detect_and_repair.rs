//! End-to-end security pipeline (paper §6's envisioned integration):
//! rule-based intrusion **detection** over the transaction history feeds
//! the **selective repair** machinery — no human in the loop for the
//! clear-cut cases.
//!
//! Run with: `cargo run --example detect_and_repair`

use resildb_core::{AnomalyRule, Error, Flavor, ResilientDb, Value};

fn main() -> Result<(), Error> {
    let rdb = ResilientDb::new(Flavor::Postgres)?;
    let mut conn = rdb.connect()?;
    conn.execute("CREATE TABLE acct (id INTEGER PRIMARY KEY, bal FLOAT)")?;
    conn.execute("INSERT INTO acct (id, bal) VALUES (1, 120.0), (2, 80.0), (3, 310.0), (4, 55.0)")?;

    // Normal traffic: small transfers.
    for (from, to) in [(1, 2), (3, 4), (2, 3)] {
        conn.execute("BEGIN")?;
        conn.execute(&format!("SELECT bal FROM acct WHERE id = {from}"))?;
        conn.execute(&format!(
            "UPDATE acct SET bal = bal - 10.0 WHERE id = {from}"
        ))?;
        conn.execute(&format!("UPDATE acct SET bal = bal + 10.0 WHERE id = {to}"))?;
        conn.execute("COMMIT")?;
    }

    // The intrusion: an absurd balance jump, buried mid-history.
    conn.execute("BEGIN")?;
    conn.execute("UPDATE acct SET bal = 750000.0 WHERE id = 2")?;
    conn.execute("COMMIT")?;

    // More normal traffic afterwards, some of it reading the bad balance.
    conn.execute("BEGIN")?;
    conn.execute("SELECT bal FROM acct WHERE id = 2")?;
    conn.execute("UPDATE acct SET bal = bal + 1.0 WHERE id = 4")?;
    conn.execute("COMMIT")?;
    conn.execute("UPDATE acct SET bal = bal - 2.0 WHERE id = 3")?;

    // Detection: the DBA's standing rules flag suspicious history.
    let analysis = rdb.analyze()?;
    let rules = [
        AnomalyRule::ValueSpike {
            table: "acct".into(),
            column: "bal".into(),
            max_delta: 10_000.0,
        },
        AnomalyRule::LargeWriteSet { max_rows: 100 },
    ];
    let detections = resildb_core::detect(&analysis, &rules);
    println!("detections:");
    for d in &detections {
        println!("  txn {} at {:?}: {}", d.proxy_txn, d.lsn, d.reason);
    }
    assert_eq!(detections.len(), 1, "exactly the forged update");

    // Repair straight from the detection.
    let initial: Vec<i64> = detections.iter().map(|d| d.proxy_txn).collect();
    let report = rdb.repair(&initial, &[])?;
    println!(
        "repaired: rolled back {:?}, saved {}/{} transactions",
        report.undo_set, report.saved, report.tracked_total
    );

    let mut s = rdb.database().session();
    let r = s.query("SELECT id, bal FROM acct ORDER BY id")?;
    println!("final state:");
    for row in &r.rows {
        println!("  acct {} = {}", row[0], row[1]);
    }
    // Account 2's forged balance is gone (80 = 80 +10 -10 from the two
    // legitimate transfers); the post-attack transaction that read the
    // forged value was rolled back with it; everything else kept.
    assert_eq!(r.rows[1][1], Value::Float(80.0));
    Ok(())
}
