//! Quickstart: make a database intrusion-resilient, suffer an attack,
//! repair it — in under a minute of reading.
//!
//! Run with: `cargo run --example quickstart`

use resildb_core::{Error, Flavor, ResilientDb};

fn main() -> Result<(), Error> {
    // 1. An intrusion-resilient database: an emulated PostgreSQL-like
    //    engine with the SQL-rewriting tracking proxy in front.
    let rdb = ResilientDb::new(Flavor::Postgres)?;
    let mut conn = rdb.connect()?;

    // 2. Ordinary application work — the proxy tracks dependencies
    //    transparently; the application needs no changes.
    conn.execute(
        "CREATE TABLE account (id INTEGER PRIMARY KEY, owner VARCHAR(16), balance FLOAT)",
    )?;
    conn.execute(
        "INSERT INTO account (id, owner, balance) VALUES \
         (1, 'alice', 100.0), (2, 'bob', 50.0), (3, 'carol', 75.0)",
    )?;

    // 3. The attack: a malicious transaction that has already COMMITTED —
    //    ordinary DBMS recovery cannot touch it.
    conn.execute("ANNOTATE attack")?;
    conn.execute("BEGIN")?;
    conn.execute("UPDATE account SET balance = 1000000.0 WHERE id = 1")?;
    conn.execute("COMMIT")?;

    // 4. Business continues before anyone notices. One transaction reads
    //    the poisoned balance (and is therefore polluted); another is
    //    completely unrelated.
    conn.execute("ANNOTATE polluted_transfer")?;
    conn.execute("BEGIN")?;
    conn.execute("SELECT balance FROM account WHERE id = 1")?;
    conn.execute("UPDATE account SET balance = balance + 10.0 WHERE id = 2")?;
    conn.execute("COMMIT")?;
    conn.execute("UPDATE account SET balance = balance - 5.0 WHERE id = 3")?;

    // 5. Detection: the DBA identifies the attack transaction and asks the
    //    framework for the damage perimeter.
    let attack = rdb.txn_id_by_label("attack")?.expect("attack was tracked");
    let analysis = rdb.analyze()?;
    let undo_set = analysis.undo_set(&[attack], &[]);
    println!("attack txn id: {attack}");
    println!(
        "damage perimeter: {undo_set:?} ({} of {} tracked transactions)",
        undo_set.len(),
        analysis.tracked_transactions().len()
    );

    // 6. Selective undo: only the attack and its dependents are rolled
    //    back; the unrelated update survives.
    let report = rdb.repair(&[attack], &[])?;
    println!(
        "repair: {} compensating statements, {} transactions saved ({:.0}%)",
        report.outcome.statements.len(),
        report.saved,
        report.saved_percentage()
    );

    let mut s = rdb.database().session();
    println!("\nfinal state:");
    for row in s
        .query("SELECT id, owner, balance FROM account ORDER BY id")?
        .rows
    {
        println!("  {} {} {}", row[0], row[1], row[2]);
    }
    // alice: 100 (attack undone), bob: 50 (polluted transfer undone),
    // carol: 70 (legitimate work preserved).
    Ok(())
}
