//! Offline stand-in for the `proptest` crate.
//!
//! Implements the strategy/combinator/macro surface resildb's property
//! tests use — `proptest!`, `prop_oneof!`, `prop_assert*!`, `Strategy`
//! with `prop_map`/`prop_filter`/`prop_flat_map`/`prop_recursive`,
//! `Just`, `any`, numeric ranges, regex-literal string strategies,
//! `collection::vec` and `option::of` — as a **generate-only** engine:
//! inputs are produced from a deterministic per-test PRNG and failures
//! report the offending input, but there is no shrinking and no
//! regression-file persistence.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator handed to strategies (splitmix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Builds the RNG for one test case; seeded from the test's path so
/// different tests see different input streams, reproducibly.
pub fn rng_for(test_path: &str, case: u32) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng::new(h ^ ((case as u64) << 1 | 1))
}

// ---------------------------------------------------------------------------
// Config and errors
// ---------------------------------------------------------------------------

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A failed test case (the only variant this shim distinguishes).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fails the current case with `reason`.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

// ---------------------------------------------------------------------------
// Strategy trait and combinators
// ---------------------------------------------------------------------------

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred` (regenerates, up to a retry cap).
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Builds a second strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Recursively composes this (leaf) strategy through `recurse` up to
    /// `depth` levels; the size hints are accepted but unused.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            let composite = recurse(level).boxed();
            // Mix the leaf back in at every level so generation can stop
            // early; only the outermost level is guaranteed composite-capable.
            level = Union::weighted(vec![(1, leaf.clone()), (2, composite)]).boxed();
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among same-typed strategies (backs `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Self {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

impl<T> Union<T> {
    /// Uniform choice.
    pub fn uniform(arms: Vec<BoxedStrategy<T>>) -> Self {
        Self::weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Choice proportional to the attached weights.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "Union needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>();
        assert!(total > 0, "Union weights sum to zero");
        Self { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

// ---------------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for [`Arbitrary`] types; see [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Self(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Numeric range strategies
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

// ---------------------------------------------------------------------------
// Regex-literal string strategies
// ---------------------------------------------------------------------------

/// `&str` patterns act as string strategies for the tiny regex dialect the
/// tests use: literal chars and `[class]` atoms, optionally quantified
/// with `{m,n}`. Classes support ranges (`a-z`) and literal members.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let (choices, next) = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"));
            (parse_class(&chars[i + 1..close], pattern), close + 1)
        } else {
            (vec![(chars[i], chars[i])], i + 1)
        };
        let (min, max, next) = parse_quantifier(&chars, next, pattern);
        let count = min + (rng.below((max - min + 1) as u64) as usize);
        for _ in 0..count {
            out.push(pick_from_class(&choices, rng));
        }
        i = next;
    }
    out
}

fn parse_class(body: &[char], pattern: &str) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            assert!(body[i] <= body[i + 2], "bad class range in {pattern:?}");
            ranges.push((body[i], body[i + 2]));
            i += 3;
        } else {
            ranges.push((body[i], body[i]));
            i += 1;
        }
    }
    assert!(!ranges.is_empty(), "empty class in pattern {pattern:?}");
    ranges
}

fn parse_quantifier(chars: &[char], at: usize, pattern: &str) -> (usize, usize, usize) {
    if at >= chars.len() || chars[at] != '{' {
        return (1, 1, at);
    }
    let close = chars[at..]
        .iter()
        .position(|&c| c == '}')
        .map(|p| at + p)
        .unwrap_or_else(|| panic!("unclosed quantifier in {pattern:?}"));
    let body: String = chars[at + 1..close].iter().collect();
    let (min, max) = match body.split_once(',') {
        Some((m, n)) => (
            m.parse().expect("quantifier min"),
            n.parse().expect("quantifier max"),
        ),
        None => {
            let n = body.parse().expect("quantifier count");
            (n, n)
        }
    };
    assert!(min <= max, "bad quantifier in {pattern:?}");
    (min, max, close + 1)
}

fn pick_from_class(ranges: &[(char, char)], rng: &mut TestRng) -> char {
    let total: u64 = ranges
        .iter()
        .map(|(a, b)| (*b as u64) - (*a as u64) + 1)
        .sum();
    let mut pick = rng.below(total);
    for (a, b) in ranges {
        let width = (*b as u64) - (*a as u64) + 1;
        if pick < width {
            return char::from_u32(*a as u32 + pick as u32).expect("valid char");
        }
        pick -= width;
    }
    unreachable!("class exhausted")
}

// ---------------------------------------------------------------------------
// collection / option modules
// ---------------------------------------------------------------------------

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    /// Strategy producing `Vec`s of `element` values; see [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy producing `Option`s; see [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `Some(value)` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Uniform (or `weight => arm` weighted) choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::Union::weighted(::std::vec![
            $(($weight, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::uniform(::std::vec![
            $($crate::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        $crate::prop_assert_eq!($left, $right, "")
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}\n{}",
                            stringify!($left),
                            stringify!($right),
                            left,
                            right,
                            ::std::format!($($fmt)*),
                        ),
                    ));
                }
            }
        }
    };
}

/// Declares property tests; each `pat in strategy` argument is generated
/// afresh for every case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let strategies = ($($strat,)+);
            for case in 0..config.cases {
                let mut rng = $crate::rng_for(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let values = $crate::Strategy::generate(&strategies, &mut rng);
                let repr = ::std::format!("{:?}", &values);
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || {
                        let ($($pat,)+) = values;
                        let run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        };
                        run()
                    }),
                );
                match outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(e)) => {
                        ::std::panic!(
                            "proptest {} failed at case {case}: {e}\ninput: {repr}",
                            stringify!($name),
                        );
                    }
                    ::std::result::Result::Err(payload) => {
                        ::std::eprintln!(
                            "proptest {} panicked at case {case}; input: {repr}",
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
}

/// The usual glob import: the strategy trait, core combinators and macros.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn regex_pattern_shapes() {
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let ident = "[a-z][a-z0-9_]{0,8}".generate(&mut rng);
            assert!(!ident.is_empty() && ident.len() <= 9, "bad ident {ident:?}");
            assert!(ident.chars().next().unwrap().is_ascii_lowercase());
            let printable = "[ -~]{0,12}".generate(&mut rng);
            assert!(printable.len() <= 12);
            assert!(printable.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::new(9);
        for _ in 0..500 {
            let (a, b, c) = (0u32..4, 0u64..12, any::<bool>()).generate(&mut rng);
            assert!(a < 4 && b < 12);
            let _ = c;
            let v = collection::vec(0i64..20, 1..4).generate(&mut rng);
            assert!((1..=3).contains(&v.len()));
            assert!(v.iter().all(|x| (0..20).contains(x)));
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = (0i64..10).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 16, 4, |inner| {
            collection::vec(inner, 1..4).prop_map(Tree::Node)
        });
        let mut rng = TestRng::new(11);
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }

    #[test]
    fn filter_and_flat_map_compose() {
        let even = (0i64..100).prop_filter("even", |v| v % 2 == 0);
        let pairs = even.prop_flat_map(|n| (Just(n), 0i64..(n + 1)));
        let mut rng = TestRng::new(5);
        for _ in 0..200 {
            let (n, m) = pairs.generate(&mut rng);
            assert!(n % 2 == 0 && m <= n);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_round_trip(x in 0u64..100, flip in any::<bool>()) {
            prop_assert!(x < 100);
            prop_assert_eq!(flip, flip, "tautology on {}", x);
        }
    }
}
