//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors the tiny API subset resildb actually uses as a
//! std-backed shim: [`Mutex`], [`RwLock`] and [`Condvar`] with
//! `parking_lot`'s no-poisoning semantics (a panicked holder does not make
//! the lock unusable for everyone else). Swapping back to the real crate is
//! a one-line change in the workspace manifest.

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion primitive; `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so a `Condvar` wait can temporarily take the std guard
    // by value (std's wait API consumes and returns it).
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates an unlocked mutex.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard taken during wait")
    }
}

/// A reader-writer lock; `read`/`write` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-access guard returned by [`RwLock::read`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

/// Exclusive-access guard returned by [`RwLock::write`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates an unlocked lock.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with this module's [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken during wait");
        guard.inner = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken during wait");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(10)).timed_out());
    }
}
