//! Offline stand-in for the `criterion` crate.
//!
//! Provides the handful of entry points resildb's micro-benchmarks use —
//! [`Criterion::bench_function`], [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`criterion_group!`]/[`criterion_main!`] — with real wall-clock timing
//! (median of per-sample means) but none of the statistical machinery,
//! HTML reports or regression detection of the real crate.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost; all variants behave the same
/// here (one setup per timed invocation, setup excluded from timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Fresh input for every iteration.
    PerIteration,
}

/// Benchmark driver configured with sample counts and time budgets.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First free-standing CLI argument acts as a name filter, mirroring
        // `cargo bench -- <substring>`. Harness flags are skipped.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            warm_up: self.warm_up_time,
            measurement: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        let mut samples = bencher.samples_ns;
        samples.sort_by(f64::total_cmp);
        let median = if samples.is_empty() {
            0.0
        } else {
            samples[samples.len() / 2]
        };
        println!("{name:<40} time: [{}]", format_ns(median));
        self
    }
}

/// Timing loop handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, recording the mean cost per call over each sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        // Size each sample so the whole run fits the measurement budget.
        let per_sample = (warm_iters.max(1) as f64 * self.measurement.as_secs_f64()
            / self.warm_up.as_secs_f64().max(1e-9)
            / self.sample_size as f64)
            .ceil() as u64;
        let per_sample = per_sample.clamp(1, u64::MAX);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            self.samples_ns
                .push(start.elapsed().as_nanos() as f64 / per_sample as f64);
        }
    }

    /// Times `routine` on inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            black_box(routine(setup()));
        }
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
        }
    }

    /// Median nanoseconds per call measured so far (used by in-repo
    /// assertions on relative speed; the real crate has no equivalent).
    pub fn median_ns(&self) -> f64 {
        let mut s = self.samples_ns.clone();
        s.sort_by(f64::total_cmp);
        if s.is_empty() {
            0.0
        } else {
            s[s.len() / 2]
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function; both the plain and the
/// `name/config/targets` forms of the real macro are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion {
            sample_size: 3,
            measurement_time: Duration::from_millis(20),
            warm_up_time: Duration::from_millis(5),
            filter: None,
        }
    }

    #[test]
    fn iter_records_samples() {
        let mut c = quick();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = b.median_ns() >= 0.0 && !b.median_ns().is_nan();
        });
        assert!(ran);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = quick();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![0u8; 16], |v| v.len(), BatchSize::SmallInput);
            assert!(b.median_ns() >= 0.0);
        });
    }

    #[test]
    fn formats_scale() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2_000_000_000.0).ends_with(" s"));
    }
}
