//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset resildb uses — `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer ranges and
//! `Rng::gen_bool` — on a splitmix64 core. Deterministic for a given seed,
//! which is all the TPC-C generator and the property tests require;
//! statistical quality beyond that is a non-goal.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word from the stream.
    fn next_u64(&mut self) -> u64;
}

/// A random generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// An element type drawable uniformly from a range. The generic
/// [`SampleRange`] impls below route through this trait so the compiler
/// can unify the range's element type with `gen_range`'s return type —
/// which is what lets bare integer literals (`gen_range(1..=10)`) fall
/// back to `i32` exactly as with the real crate.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Draws from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// A range a uniform value can be drawn from (`lo..hi` or `lo..=hi`).
pub trait SampleRange<T> {
    /// Draws one value; panics on an empty range, mirroring `rand`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// User-facing random-value methods, blanket-implemented for every core.
pub trait Rng: RngCore {
    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        // 53 high bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Commonly used generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The default seedable generator (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Vigna) — passes BigCrush, one add + two xorshifts.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&v));
            let u: u64 = rng.gen_range(1..=3);
            assert!((1..=3).contains(&u));
            let w: usize = rng.gen_range(0..10);
            assert!(w < 10);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
